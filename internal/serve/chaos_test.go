// Chaos tests: the daemon under hostile conditions — concurrent
// clients, injected panics, malformed lines, in-flight cancellation,
// wedged handlers, admission overload — must answer every request
// exactly once, stay healthy, keep producing CLI-identical output, and
// leak no goroutines.
package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appgen"
	"repro/internal/leakcheck"
)

// TestChaosStorm fires six concurrent clients mixing good ports,
// panic-injected ports, malformed lines, garbage deltas, stats, and
// cross-cancellations at one daemon, then checks the wreckage: one
// response per request, panics contained, cache poisoned-and-refilled,
// and the final output still byte-identical to the CLI.
func TestChaosStorm(t *testing.T) {
	leakcheck.Check(t)
	src, _ := appgen.GenerateLarge(appgen.LargeSpec("chaos.c", 2000, 11))
	ref := cliPortSource(t, "chaos.c", src)

	srv := New(Options{QueueDepth: 16, Workers: 2})
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "boom") {
			panic("chaos: injected fault")
		}
	}
	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "chaos.c", Source: src}))

	const clients, rounds = 6, 5
	var malformed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				switch (w + i) % 6 {
				case 0:
					c.call(&Request{ID: id, Op: "port"})
				case 1:
					if r := c.call(&Request{ID: "boom-" + id, Op: "port"}); r.OK || r.ErrKind != ErrInternal {
						c.t.Errorf("injected panic %s: got ok=%t kind=%q, want internal", id, r.OK, r.ErrKind)
					}
				case 2:
					c.call(&Request{ID: id, Op: "stats"})
				case 3:
					if r := c.call(&Request{ID: id, Op: "edit", Replace: []string{"define i64 @broken("}}); r.OK {
						c.t.Errorf("garbage delta %s unexpectedly succeeded", id)
					}
				case 4:
					malformed.Add(1)
					c.raw(`{"op":`)
				case 5:
					// Cancel a peer's (possibly finished) request: ok or
					// bad_request are both legal; a hang is not.
					c.call(&Request{ID: id, Op: "cancel", Target: fmt.Sprintf("w%d-r%d", (w+1)%clients, i)})
				}
			}
		}(w)
	}
	wg.Wait()

	st := mustOK(t, c.call(&Request{ID: "st", Op: "stats"})).Stats
	if st.PanicsContained == 0 {
		t.Errorf("stats: no panics contained, want >0")
	}
	if !st.Healthy || st.Draining {
		t.Errorf("daemon unhealthy after storm: %+v", st)
	}

	// The poisoned cache must refill and still produce CLI-identical
	// output.
	final := mustOK(t, c.call(&Request{ID: "final", Op: "port", Emit: true}))
	if final.Text != ref {
		t.Errorf("post-storm output differs from CLI output")
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))

	c.mu.Lock()
	for id, n := range c.got {
		if n != 1 {
			t.Errorf("request %q got %d responses, want exactly 1", id, n)
		}
	}
	anon := c.anon
	c.mu.Unlock()
	if int64(anon) != malformed.Load() {
		t.Errorf("%d anonymous error responses for %d malformed lines", anon, malformed.Load())
	}
}

// TestCancelInFlight cancels a request that is genuinely running (held
// open by the fault seam) and checks the typed canceled response and
// counter.
func TestCancelInFlight(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{QueueDepth: 2})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "gate") {
			entered <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
	}
	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))

	ch := c.expect("gate-1")
	c.send(&Request{ID: "gate-1", Op: "port"})
	<-entered
	mustOK(t, c.call(&Request{ID: "c1", Op: "cancel", Target: "gate-1"}))
	r := <-ch
	if r.OK || r.ErrKind != ErrCanceled {
		t.Errorf("canceled port: got ok=%t kind=%q (%s), want canceled", r.OK, r.ErrKind, r.Error)
	}
	if got := srv.c.canceled.Value(); got == 0 {
		t.Errorf("serve.requests_canceled = %d, want >0", got)
	}
	close(gate)
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestRequestDeadline sets a tiny per-request deadline on a port held
// open by the fault seam; the engine notices the expired context and
// the client gets the typed deadline response.
func TestRequestDeadline(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{QueueDepth: 2})
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "slow") {
			select {
			case <-time.After(10 * time.Second):
			case <-ctx.Done():
			}
		}
	}
	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))

	r := c.call(&Request{ID: "slow-1", Op: "port", DeadlineMS: 80})
	if r.OK || r.ErrKind != ErrDeadline {
		t.Errorf("deadlined port: got ok=%t kind=%q (%s), want deadline", r.OK, r.ErrKind, r.Error)
	}
	if got := srv.c.deadlined.Value(); got == 0 {
		t.Errorf("serve.requests_deadlined = %d, want >0", got)
	}
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestWatchdogAnswersForWedgedRequest wedges a handler past deadline
// and grace (it ignores its context entirely); the watchdog must
// answer on its behalf with the typed deadline error while the daemon
// stays responsive, and the wedged goroutine must still unwind.
func TestWatchdogAnswersForWedgedRequest(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{
		QueueDepth: 2,
		Deadline:   100 * time.Millisecond,
		Grace:      100 * time.Millisecond,
	})
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "wedge") {
			time.Sleep(600 * time.Millisecond) // deliberately ignores ctx
		}
	}
	c := connect(t, srv)

	r := c.call(&Request{ID: "wedge-1", Op: "stats"})
	if r.OK || r.ErrKind != ErrDeadline || !strings.Contains(r.Error, "watchdog") {
		t.Errorf("wedged request: got ok=%t kind=%q (%s), want watchdog deadline", r.OK, r.ErrKind, r.Error)
	}
	st := mustOK(t, c.call(&Request{ID: "st", Op: "stats"})).Stats
	if st.WatchdogFired == 0 {
		t.Errorf("stats: watchdog_fired = 0, want >0")
	}
	if !st.Healthy {
		t.Errorf("daemon unhealthy after watchdog fire")
	}
	// shutdown drains the still-sleeping wedged goroutine before
	// answering; leakcheck then sees it gone.
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestOverloadAndDrain fills the single admission slot with a held
// request: the next request gets the typed overloaded response
// immediately; after release and an explicit drain flip, new work gets
// the typed shutting_down response.
func TestOverloadAndDrain(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{QueueDepth: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "hold") {
			entered <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
	}
	c := connect(t, srv)

	ch := c.expect("hold-1")
	c.send(&Request{ID: "hold-1", Op: "stats"})
	<-entered
	if r := c.call(&Request{ID: "ov", Op: "stats"}); r.OK || r.ErrKind != ErrOverloaded {
		t.Errorf("overload: got ok=%t kind=%q (%s), want overloaded", r.OK, r.ErrKind, r.Error)
	}
	if got := srv.c.overloaded.Value(); got != 1 {
		t.Errorf("serve.requests_overloaded = %d, want 1", got)
	}
	close(gate)
	if r := <-ch; !r.OK {
		t.Errorf("held request failed after release: %s: %s", r.ErrKind, r.Error)
	}

	srv.Shutdown()
	if r := c.call(&Request{ID: "ds", Op: "stats"}); r.OK || r.ErrKind != ErrShutdown {
		t.Errorf("draining: got ok=%t kind=%q, want shutting_down", r.OK, r.ErrKind)
	}
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
	srv.Drain()
}
