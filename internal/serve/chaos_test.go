// Chaos tests: the daemon under hostile conditions — concurrent
// clients, injected panics, malformed lines, in-flight cancellation,
// wedged handlers, admission overload — must answer every request
// exactly once, stay healthy, keep producing CLI-identical output, and
// leak no goroutines.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appgen"
	"repro/internal/leakcheck"
	"repro/internal/obs"
)

// readFlightDump polls for the crash file (watchdog dumps land after
// the client already has its answer), validates it, and decodes the
// envelope.
func readFlightDump(t *testing.T, path string) (data []byte, reason string, tags map[string]string) {
	t.Helper()
	for i := 0; i < 250; i++ {
		if data, _ = os.ReadFile(path); len(data) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(data) == 0 {
		t.Fatalf("no flight dump at %s", path)
	}
	if err := obs.ValidateFlight(data); err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	if max := 2 * 1024 * obs.MaxRecordBytes; len(data) > max {
		t.Errorf("flight dump is %d bytes, bound is %d", len(data), max)
	}
	var d struct {
		Reason string            `json:"reason"`
		Tags   map[string]string `json:"tags"`
	}
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("flight dump envelope: %v", err)
	}
	return data, d.Reason, d.Tags
}

// TestChaosStorm fires six concurrent clients mixing good ports,
// panic-injected ports, malformed lines, garbage deltas, stats, and
// cross-cancellations at one daemon, then checks the wreckage: one
// response per request, panics contained, cache poisoned-and-refilled,
// and the final output still byte-identical to the CLI.
func TestChaosStorm(t *testing.T) {
	leakcheck.Check(t)
	src, _ := appgen.GenerateLarge(appgen.LargeSpec("chaos.c", 2000, 11))
	ref := cliPortSource(t, "chaos.c", src)

	crash := filepath.Join(t.TempDir(), "flight.json")
	srv := New(Options{QueueDepth: 16, Workers: 2, CrashPath: crash})
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "boom") {
			panic("chaos: injected fault")
		}
	}
	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "chaos.c", Source: src}))

	const clients, rounds = 6, 5
	var malformed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				switch (w + i) % 6 {
				case 0:
					c.call(&Request{ID: id, Op: "port"})
				case 1:
					if r := c.call(&Request{ID: "boom-" + id, Op: "port"}); r.OK || r.ErrKind != ErrInternal {
						c.t.Errorf("injected panic %s: got ok=%t kind=%q, want internal", id, r.OK, r.ErrKind)
					}
				case 2:
					c.call(&Request{ID: id, Op: "stats"})
				case 3:
					if r := c.call(&Request{ID: id, Op: "edit", Replace: []string{"define i64 @broken("}}); r.OK {
						c.t.Errorf("garbage delta %s unexpectedly succeeded", id)
					}
				case 4:
					malformed.Add(1)
					c.raw(`{"op":`)
				case 5:
					// Cancel a peer's (possibly finished) request: ok or
					// bad_request are both legal; a hang is not.
					c.call(&Request{ID: id, Op: "cancel", Target: fmt.Sprintf("w%d-r%d", (w+1)%clients, i)})
				}
			}
		}(w)
	}
	wg.Wait()

	st := mustOK(t, c.call(&Request{ID: "st", Op: "stats"})).Stats
	if st.PanicsContained == 0 {
		t.Errorf("stats: no panics contained, want >0")
	}
	if !st.Healthy || st.Draining {
		t.Errorf("daemon unhealthy after storm: %+v", st)
	}

	// The contained panics dumped the flight recorder; even mid-storm
	// the dump must be a valid, bounded document.
	if _, reason, _ := readFlightDump(t, crash); reason != "panic" {
		t.Errorf("storm dump reason %q, want panic", reason)
	}

	// The poisoned cache must refill and still produce CLI-identical
	// output.
	final := mustOK(t, c.call(&Request{ID: "final", Op: "port", Emit: true}))
	if final.Text != ref {
		t.Errorf("post-storm output differs from CLI output")
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))

	c.mu.Lock()
	for id, n := range c.got {
		if n != 1 {
			t.Errorf("request %q got %d responses, want exactly 1", id, n)
		}
	}
	anon := c.anon
	c.mu.Unlock()
	if int64(anon) != malformed.Load() {
		t.Errorf("%d anonymous error responses for %d malformed lines", anon, malformed.Load())
	}
}

// TestCancelInFlight cancels a request that is genuinely running (held
// open by the fault seam) and checks the typed canceled response and
// counter.
func TestCancelInFlight(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{QueueDepth: 2})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "gate") {
			entered <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
	}
	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))

	ch := c.expect("gate-1")
	c.send(&Request{ID: "gate-1", Op: "port"})
	<-entered
	mustOK(t, c.call(&Request{ID: "c1", Op: "cancel", Target: "gate-1"}))
	r := <-ch
	if r.OK || r.ErrKind != ErrCanceled {
		t.Errorf("canceled port: got ok=%t kind=%q (%s), want canceled", r.OK, r.ErrKind, r.Error)
	}
	if got := srv.c.canceled.Value(); got == 0 {
		t.Errorf("serve.requests_canceled = %d, want >0", got)
	}
	close(gate)
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestRequestDeadline sets a tiny per-request deadline on a port held
// open by the fault seam; the engine notices the expired context and
// the client gets the typed deadline response.
func TestRequestDeadline(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{QueueDepth: 2})
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "slow") {
			select {
			case <-time.After(10 * time.Second):
			case <-ctx.Done():
			}
		}
	}
	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))

	r := c.call(&Request{ID: "slow-1", Op: "port", DeadlineMS: 80})
	if r.OK || r.ErrKind != ErrDeadline {
		t.Errorf("deadlined port: got ok=%t kind=%q (%s), want deadline", r.OK, r.ErrKind, r.Error)
	}
	if got := srv.c.deadlined.Value(); got == 0 {
		t.Errorf("serve.requests_deadlined = %d, want >0", got)
	}
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestWatchdogAnswersForWedgedRequest wedges a handler past deadline
// and grace (it ignores its context entirely); the watchdog must
// answer on its behalf with the typed deadline error while the daemon
// stays responsive, and the wedged goroutine must still unwind.
func TestWatchdogAnswersForWedgedRequest(t *testing.T) {
	leakcheck.Check(t)
	crash := filepath.Join(t.TempDir(), "flight.json")
	srv := New(Options{
		QueueDepth: 2,
		Deadline:   100 * time.Millisecond,
		Grace:      100 * time.Millisecond,
		CrashPath:  crash,
	})
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "wedge") {
			time.Sleep(600 * time.Millisecond) // deliberately ignores ctx
		}
	}
	c := connect(t, srv)

	r := c.call(&Request{ID: "wedge-1", Op: "stats"})
	if r.OK || r.ErrKind != ErrDeadline || !strings.Contains(r.Error, "watchdog") {
		t.Errorf("wedged request: got ok=%t kind=%q (%s), want watchdog deadline", r.OK, r.ErrKind, r.Error)
	}
	st := mustOK(t, c.call(&Request{ID: "st", Op: "stats"})).Stats
	if st.WatchdogFired == 0 {
		t.Errorf("stats: watchdog_fired = 0, want >0")
	}
	if !st.Healthy {
		t.Errorf("daemon unhealthy after watchdog fire")
	}

	// The forensic contract: the dump names the wedged request, both by
	// the daemon-assigned rid and the client's id, and replays the
	// events leading up to the wedge.
	data, reason, tags := readFlightDump(t, crash)
	if reason != "watchdog" {
		t.Errorf("dump reason %q, want watchdog", reason)
	}
	if tags["request_id"] != "wedge-1" || tags["op"] != "stats" {
		t.Errorf("dump tags %v do not name the wedged request", tags)
	}
	if !strings.HasPrefix(tags["rid"], "r") {
		t.Errorf("dump tags %v carry no daemon rid", tags)
	}
	if !strings.Contains(string(data), "serve.request_admitted") {
		t.Errorf("dump carries no admission events:\n%.400s", data)
	}

	// shutdown drains the still-sleeping wedged goroutine before
	// answering; leakcheck then sees it gone.
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestOverloadAndDrain fills the single admission slot with a held
// request: the next request gets the typed overloaded response
// immediately; after release and an explicit drain flip, new work gets
// the typed shutting_down response.
func TestOverloadAndDrain(t *testing.T) {
	leakcheck.Check(t)
	srv := New(Options{QueueDepth: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "hold") {
			entered <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
	}
	c := connect(t, srv)

	ch := c.expect("hold-1")
	c.send(&Request{ID: "hold-1", Op: "stats"})
	<-entered
	if r := c.call(&Request{ID: "ov", Op: "stats"}); r.OK || r.ErrKind != ErrOverloaded {
		t.Errorf("overload: got ok=%t kind=%q (%s), want overloaded", r.OK, r.ErrKind, r.Error)
	}
	if got := srv.c.overloaded.Value(); got != 1 {
		t.Errorf("serve.requests_overloaded = %d, want 1", got)
	}
	close(gate)
	if r := <-ch; !r.OK {
		t.Errorf("held request failed after release: %s: %s", r.ErrKind, r.Error)
	}

	srv.Shutdown()
	if r := c.call(&Request{ID: "ds", Op: "stats"}); r.OK || r.ErrKind != ErrShutdown {
		t.Errorf("draining: got ok=%t kind=%q, want shutting_down", r.OK, r.ErrKind)
	}
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
	srv.Drain()
}

// TestHTTPListener drives the live-telemetry surface through a full
// daemon lifecycle: valid Prometheus and JSON exposition, a mid-flight
// scrape whose counters cross-check against the end-of-run snapshot,
// /healthz walking ok → degraded (queue full) → ok, and a shutdown
// that stops the listener without leaking its goroutines.
func TestHTTPListener(t *testing.T) {
	leakcheck.Check(t)
	prov := obs.New()
	srv := New(Options{QueueDepth: 1, Obs: prov})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.faultInject = func(ctx context.Context, req *Request) {
		if strings.HasPrefix(req.ID, "hold") {
			entered <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
	}
	addr, err := srv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := hc.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}
	health := func() obs.Health {
		t.Helper()
		_, body := get("/healthz")
		var h obs.Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz: %v (%s)", err, body)
		}
		return h
	}

	c := connect(t, srv)
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))
	if h := health(); h.Status != "ok" {
		t.Errorf("idle health = %+v, want ok", h)
	}

	// Hold the only admission slot: the daemon is mid-request AND the
	// queue is full, so the scrape observes a live run and health
	// degrades.
	ch := c.expect("hold-1")
	c.send(&Request{ID: "hold-1", Op: "port"})
	<-entered
	code, scrape := get("/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	}
	if err := obs.ValidateProm(scrape); err != nil {
		t.Errorf("mid-flight scrape invalid: %v", err)
	}
	if h := health(); h.Status != "degraded" || h.Reason == "" {
		t.Errorf("health under full queue = %+v, want degraded with reason", h)
	}
	_, mjson := get("/metrics.json")
	if err := obs.ValidateMetrics(mjson); err != nil {
		t.Errorf("/metrics.json invalid: %v", err)
	}
	close(gate)
	if r := <-ch; !r.OK {
		t.Fatalf("held port failed: %s: %s", r.ErrKind, r.Error)
	}

	// The mid-flight scrape must be consistent with the end-of-run v2
	// snapshot: shared counters ≤ final values, with real overlap.
	final, err := obs.EncodeMetrics(prov.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPromAgainst(scrape, final); err != nil {
		t.Errorf("mid-flight scrape inconsistent with final snapshot: %v", err)
	}

	// Shutdown stops the listener (the shutdown op drains httpWG before
	// answering); the surface must actually be gone.
	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
	if _, err := hc.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("HTTP listener still answering after shutdown drain")
	}
}
