// Per-op request handlers. Every handler returns a Response; the
// dispatch layer (execute) owns panic containment and error-kind
// mapping, so handlers just do the work and report honestly.
package serve

import (
	"context"
	"errors"
	"os"
	"time"

	"repro/internal/atomig"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/race"
	"repro/internal/stress"
	"repro/internal/weaken"
)

// opLoad compiles a module into a (new or replaced) session.
func (s *Server) opLoad(ctx context.Context, req *Request) *Response {
	if req.Name == "" {
		return errResp(ErrBadRequest, "load needs a name")
	}
	src, err := readSource(req)
	if err != nil {
		return errResp(ErrBadRequest, "load: %v", err)
	}
	if ctx.Err() != nil {
		return errResp("", "load: %v", ctx.Err())
	}
	sess, err := newSession(req.Name, src, langOf(req.Lang, req.Name), s.opts.Workers, s.opts.Obs)
	if err != nil {
		return errResp(ErrBadRequest, "load: %v", err)
	}
	s.install(req.Session, sess)
	return &Response{OK: true, Module: sess.base.Name, Funcs: len(sess.base.Funcs)}
}

// opEdit applies a delta batch to the session's module.
func (s *Server) opEdit(ctx context.Context, req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	if len(req.Replace) == 0 && len(req.Remove) == 0 {
		return errResp(ErrBadRequest, "edit needs replace or remove entries")
	}
	if ctx.Err() != nil {
		return errResp("", "edit: %v", ctx.Err())
	}
	if err := sess.edit(req.Replace, req.Remove); err != nil {
		return errResp(ErrBadRequest, "edit: %v", err)
	}
	sess.mu.RLock()
	funcs := len(sess.base.Funcs)
	sess.mu.RUnlock()
	return &Response{OK: true, Module: sess.name, Funcs: funcs}
}

// opPort runs the cached pipeline and returns the report (plus the
// ported IR inline with emit, or written to a file with out).
func (s *Server) opPort(ctx context.Context, req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	ported, rep, err := sess.port(ctx, s.opts.Workers, s.opts.Obs)
	if err != nil {
		return portError(err)
	}
	s.c.cacheHits.Add(int64(rep.CacheHits))
	s.c.cacheMiss.Add(int64(rep.CacheMisses))
	s.logCache("port", rep)
	resp := &Response{OK: true, Module: rep.Module, Funcs: len(ported.Funcs), Report: rep}
	if req.Emit || req.Out != "" {
		text := ported.String()
		if req.Out != "" {
			if err := os.WriteFile(req.Out, []byte(text), 0o644); err != nil {
				return errResp(ErrBadRequest, "port: write %s: %v", req.Out, err)
			}
		}
		if req.Emit {
			resp.Text = text
		}
	}
	return resp
}

// opDump renders the session's un-ported module — the input a CLI run
// must port to reproduce the daemon's output byte for byte.
func (s *Server) opDump(req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	text := sess.dumpBase()
	resp := &Response{OK: true, Module: sess.name}
	if req.Out != "" {
		if err := os.WriteFile(req.Out, []byte(text), 0o644); err != nil {
			return errResp(ErrBadRequest, "dump: write %s: %v", req.Out, err)
		}
	} else {
		resp.Text = text
	}
	return resp
}

// opExplain runs the race detector over the un-ported module and maps
// each race to the location the port should promote.
func (s *Server) opExplain(ctx context.Context, req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	if len(req.Entries) == 0 {
		return errResp(ErrBadRequest, "explain-races needs entries")
	}
	m, err := sess.cloneBase()
	if err != nil {
		return errResp("", "explain-races: %v", err)
	}
	if ctx.Err() != nil {
		return errResp("", "explain-races: %v", ctx.Err())
	}
	res, err := race.Sweep(m, race.SweepOptions{
		Model:   memmodel.ModelWMM,
		Entries: req.Entries,
		Workers: s.opts.Workers,
		Obs:     s.opts.Obs,
	})
	if err != nil {
		return errResp(ErrBadRequest, "explain-races: %v", err)
	}
	return &Response{
		OK:         true,
		Races:      res.Detector.Races(),
		Executions: res.Executions,
		Violations: res.Violations,
		Text:       atomig.ExplainRaces(m, res.Races()).String(),
	}
}

// opVerify ports the module (cached) and model-checks the result under
// the request's budgets, reusing mc's three-valued verdict: pass,
// fail/race, or unknown with the stop reason when a budget ran out.
func (s *Server) opVerify(ctx context.Context, req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	if len(req.Entries) == 0 {
		return errResp(ErrBadRequest, "verify needs entries")
	}
	ported, rep, err := sess.port(ctx, s.opts.Workers, s.opts.Obs)
	if err != nil {
		return portError(err)
	}
	s.c.cacheHits.Add(int64(rep.CacheHits))
	s.c.cacheMiss.Add(int64(rep.CacheMisses))
	s.logCache("verify", rep)
	opts := mc.Options{
		Model:         memmodel.ModelWMM,
		Entries:       req.Entries,
		Context:       ctx,
		MaxExecutions: req.MaxExecs,
		DetectRaces:   true,
		Workers:       s.opts.Workers,
		Obs:           s.opts.Obs,
	}
	if req.TimeBudgetMS > 0 {
		opts.TimeBudget = time.Duration(req.TimeBudgetMS) * time.Millisecond
	}
	res, err := mc.Check(ported, opts)
	if err != nil {
		return errResp(ErrBadRequest, "verify: %v", err)
	}
	return &Response{
		OK:         true,
		Module:     rep.Module,
		Report:     rep,
		Verdict:    res.Verdict.String(),
		Reason:     res.Reason,
		Violations: res.Violations,
		Races:      len(res.Races),
		Executions: res.Executions,
	}
}

// opStress ports the module (cached) and runs the schedule-fuzzing
// stress sweep on the result (internal/stress): the plain-execution
// fast path, every scheduler mode x Seeds schedules, the detector
// sampling Sample of the plain locations. The verdict is a witness —
// "pass" here means the sweep was clean, not that the program is.
func (s *Server) opStress(ctx context.Context, req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	if len(req.Entries) == 0 {
		return errResp(ErrBadRequest, "stress needs entries")
	}
	ported, rep, err := sess.port(ctx, s.opts.Workers, s.opts.Obs)
	if err != nil {
		return portError(err)
	}
	s.c.cacheHits.Add(int64(rep.CacheHits))
	s.c.cacheMiss.Add(int64(rep.CacheMisses))
	s.logCache("stress", rep)
	res, err := stress.Sweep(ported, stress.Options{
		Model:   memmodel.ModelWMM,
		Entries: req.Entries,
		Seeds:   req.Seeds,
		Sample:  req.Sample,
		Workers: s.opts.Workers,
		Context: ctx,
		Obs:     s.opts.Obs,
	})
	if err != nil {
		return errResp(ErrBadRequest, "stress: %v", err)
	}
	info := &StressInfo{
		Schedules:   res.Schedules,
		Steps:       res.Steps,
		StepLimited: res.StepLimited,
		Forwarded:   res.Forwarded,
		Skipped:     res.Skipped,
	}
	if sec := res.Elapsed.Seconds(); sec > 0 {
		info.RatePerSec = float64(res.Schedules) / sec
	}
	for _, f := range res.Findings {
		info.Findings = append(info.Findings, f.String())
	}
	verdict := "pass"
	switch {
	case len(res.Violations()) > 0:
		verdict = "violated"
	case res.Detector.Races() > 0:
		verdict = "racy"
	}
	return &Response{
		OK:         true,
		Module:     rep.Module,
		Report:     rep,
		Verdict:    verdict,
		Violations: res.Violations(),
		Races:      res.Detector.Races(),
		Executions: res.Schedules,
		Stress:     info,
	}
}

// opOptimize ports the module (cached) and runs the checker-in-the-
// loop weakening optimizer on the ported clone (internal/weaken). The
// session memoizes the result per (options, module) — a repeat request
// replays it with replayed=true — and folds the options into its cache
// salt, so flipping any of them starts from a clean incremental slate.
func (s *Server) opOptimize(ctx context.Context, req *Request, sess *session) *Response {
	if sess == nil {
		return errResp(ErrNoModule, "no module loaded in session %q", sessionName(req))
	}
	if len(req.Entries) == 0 {
		return errResp(ErrBadRequest, "optimize needs entries")
	}
	wopts := weaken.DefaultOptions(req.Entries)
	wopts.Arch = req.Arch
	wopts.DetectRaces = !req.NoRaces
	wopts.MaxExecs = req.MaxExecs
	if req.Oracle != "" {
		oracle, err := weaken.ParseOracleMode(req.Oracle)
		if err != nil {
			return errResp(ErrBadRequest, "optimize: %v", err)
		}
		wopts.Oracle = oracle
		wopts.StressSeeds = req.Seeds
		wopts.StressSample = req.Sample
	}
	if req.TimeBudgetMS > 0 {
		wopts.TimeBudget = time.Duration(req.TimeBudgetMS) * time.Millisecond
	}
	if _, err := weaken.Arch(req.Arch); err != nil {
		return errResp(ErrBadRequest, "optimize: %v", err)
	}
	res, rep, text, replayed, err := sess.optimize(ctx, s.opts.Workers, s.opts.Obs, wopts)
	if err != nil {
		return portError(err)
	}
	if rep != nil && !replayed {
		s.c.cacheHits.Add(int64(rep.CacheHits))
		s.c.cacheMiss.Add(int64(rep.CacheMisses))
		s.logCache("optimize", rep)
	}
	// The memo decision — replayed the session's memoized result vs
	// re-ran the checker — is operational state worth a log line.
	s.lg.Event("serve.optimize_memoized").
		Str("module", res.Module).Bool("replayed", replayed).Emit()
	resp := &Response{
		OK: true, Module: res.Module, Report: rep,
		Verdict: res.Verdict, Reason: res.Reason,
		Optimize: res, Replayed: replayed,
	}
	if req.Emit || req.Out != "" {
		if req.Out != "" {
			if err := os.WriteFile(req.Out, []byte(text), 0o644); err != nil {
				return errResp(ErrBadRequest, "optimize: write %s: %v", req.Out, err)
			}
		}
		if req.Emit {
			resp.Text = text
		}
	}
	return resp
}

// logCache emits the detection-cache outcome of one cached port — the
// incremental-analysis signal (all hits = warm replay).
func (s *Server) logCache(op string, rep *atomig.Report) {
	s.lg.Event("serve.cache_consulted").
		Str("op", op).Str("module", rep.Module).
		Int("hits", int64(rep.CacheHits)).Int("misses", int64(rep.CacheMisses)).Emit()
}

// opStats snapshots the server counters; it doubles as the health
// check (healthy = accepting work).
func (s *Server) opStats() *Response {
	st := &Stats{
		Healthy:         !s.draining.Load(),
		Status:          s.health().Status,
		Draining:        s.draining.Load(),
		InFlight:        s.live.Load(),
		QueueDepth:      s.opts.QueueDepth,
		Requests:        s.c.requests.Value(),
		Failed:          s.c.failed.Value(),
		Overloaded:      s.c.overloaded.Value(),
		Canceled:        s.c.canceled.Value(),
		Deadlined:       s.c.deadlined.Value(),
		PanicsContained: s.c.panics.Value(),
		WatchdogFired:   s.c.watchdog.Value(),
		CacheHits:       s.c.cacheHits.Value(),
		CacheMisses:     s.c.cacheMiss.Value(),
		Sessions:        s.sessionNames(),
	}
	s.mu.Lock()
	for _, sess := range s.sessions {
		st.CacheEntries += sess.cache.Len()
	}
	s.mu.Unlock()
	return &Response{OK: true, Stats: st}
}

// sessionName echoes the addressed session for error messages.
func sessionName(req *Request) string {
	if req.Session == "" {
		return "default"
	}
	return req.Session
}

// portError classifies a pipeline failure: cancellation surfaces as
// the typed deadline/cancel kind (the dispatch layer refines it from
// the context), everything else as an internal engine error — the
// port ran on a clone, so the session itself is intact either way.
func portError(err error) *Response {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return errResp("", "port: %v", err)
	}
	return errResp(ErrInternal, "port: %v", err)
}
