// The wire protocol: one JSON object per line, request in, response
// out. Responses carry the request's id and may be written out of
// order — clients correlate by id. docs/SERVE.md is the protocol
// reference; this file is its source of truth.
package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/atomig"
	"repro/internal/weaken"
)

// Request is one line of client input.
type Request struct {
	// ID correlates the response; opaque to the server.
	ID string `json:"id"`
	// Op selects the operation: load, edit, port, dump, explain-races,
	// verify, stress, optimize, stats, health, cancel, shutdown.
	Op string `json:"op"`

	// Session names the module session (default "default"): load
	// creates or replaces it, every other module op addresses it.
	Session string `json:"session,omitempty"`

	// load: module source, inline or from a file. Name is the compile
	// path (its suffix selects MiniC vs AIR unless Lang overrides).
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Path   string `json:"path,omitempty"`
	Lang   string `json:"lang,omitempty"` // "c" or "air"

	// edit: function-level deltas against the session's module.
	// Replace holds AIR function definitions parsed against the
	// session's structs and globals; Remove holds function names. The
	// batch applies transactionally: any failure leaves the session
	// unchanged.
	Replace []string `json:"replace,omitempty"`
	Remove  []string `json:"remove,omitempty"`

	// port: Emit returns the ported module text in the response; Out
	// writes it to a file instead (for large modules).
	Emit bool   `json:"emit,omitempty"`
	Out  string `json:"out,omitempty"`

	// explain-races / verify / optimize: thread entry functions.
	Entries []string `json:"entries,omitempty"`
	// verify / optimize: exploration budgets (0 = engine defaults; for
	// optimize they bound each candidate re-verification).
	MaxExecs     int   `json:"max_execs,omitempty"`
	TimeBudgetMS int64 `json:"time_budget_ms,omitempty"`

	// stress: schedules per scheduler mode (0 = 256) and the detector's
	// location-sampling fraction (0 = observe everything); see
	// docs/STRESS.md. Seeds doubles as the optimize stress-oracle
	// screening budget when Oracle is "screened" or "stress".
	Seeds  int     `json:"seeds,omitempty"`
	Sample float64 `json:"sample,omitempty"`

	// optimize: static cost-model architecture ("" = weaken.DefaultArch)
	// and the race-detection opt-out (detection is on by default; see
	// docs/WEAKENING.md for when to disable it). Oracle selects the
	// verification oracle: "" or "exhaustive", "screened", "stress"
	// (docs/STRESS.md).
	Arch    string `json:"arch,omitempty"`
	NoRaces bool   `json:"no_races,omitempty"`
	Oracle  string `json:"oracle,omitempty"`

	// DeadlineMS overrides the server's per-request deadline (bounded
	// above by it — a client cannot extend past the server cap).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// cancel: the id of the in-flight request to cancel.
	Target string `json:"target,omitempty"`
}

// Error kinds, machine-matchable by clients.
const (
	// ErrBadRequest: malformed JSON, unknown op, invalid arguments,
	// rejected delta. The request was never started.
	ErrBadRequest = "bad_request"
	// ErrNoModule: the addressed session has no loaded module.
	ErrNoModule = "no_module"
	// ErrOverloaded: admission control shed the request; retry later.
	ErrOverloaded = "overloaded"
	// ErrShutdown: the server is draining and accepts no new work.
	ErrShutdown = "shutting_down"
	// ErrDeadline: the request exceeded its deadline (or wedged past
	// the watchdog grace) and was canceled.
	ErrDeadline = "deadline"
	// ErrCanceled: a cancel op (or connection teardown) stopped it.
	ErrCanceled = "canceled"
	// ErrInternal: a contained panic or engine failure; the daemon
	// stays up and the session's detection cache has been evicted.
	ErrInternal = "internal"
)

// Response is one line of server output.
type Response struct {
	ID string `json:"id"`
	OK bool   `json:"ok"`
	// ErrKind is one of the Err* constants when OK is false.
	ErrKind string `json:"error_kind,omitempty"`
	Error   string `json:"error,omitempty"`

	// load / edit / port
	Module string `json:"module,omitempty"`
	Funcs  int    `json:"funcs,omitempty"`

	// port
	Report *atomig.Report `json:"report,omitempty"`
	// Text carries emitted module IR (port -emit, dump) or the
	// explain-races rendering.
	Text string `json:"text,omitempty"`

	// explain-races
	Races      int      `json:"races,omitempty"`
	Executions int      `json:"executions,omitempty"`
	Violations []string `json:"violations,omitempty"`

	// verify / optimize
	Verdict string `json:"verdict,omitempty"`
	Reason  string `json:"reason,omitempty"`

	// optimize: the full weakening result (cost before/after, accepted
	// decisions with provenance), and whether the response replayed the
	// session's memoized result — same options, unedited module — rather
	// than re-running the checker.
	Optimize *weaken.Result `json:"optimize,omitempty"`
	Replayed bool           `json:"replayed,omitempty"`

	// stress: the sweep summary; Races/Executions/Violations above are
	// populated too (Executions counts schedules).
	Stress *StressInfo `json:"stress,omitempty"`

	// stats / health
	Stats *Stats `json:"stats,omitempty"`
}

// StressInfo is the stress op's sweep summary: throughput, sampling
// effect, and every finding with its replayable schedule provenance.
type StressInfo struct {
	Schedules   int     `json:"schedules"`
	Steps       int64   `json:"steps"`
	StepLimited int     `json:"step_limited,omitempty"`
	Forwarded   int64   `json:"forwarded"`
	Skipped     int64   `json:"skipped,omitempty"`
	RatePerSec  float64 `json:"rate_per_sec"`
	// Findings renders each race/violation with the mode, ordinal and
	// seed that exposed it — the whole reproduction recipe.
	Findings []string `json:"findings,omitempty"`
}

// Stats is the health/stats payload: a consistent snapshot of the
// serve.* counters plus session inventory.
type Stats struct {
	Healthy        bool     `json:"healthy"`
	// Status is the /healthz verdict: ok, degraded, or draining.
	Status         string   `json:"status,omitempty"`
	Draining       bool     `json:"draining"`
	InFlight       int64    `json:"in_flight"`
	QueueDepth     int      `json:"queue_depth"`
	Requests       int64    `json:"requests"`
	Failed         int64    `json:"failed"`
	Overloaded     int64    `json:"overloaded"`
	Canceled       int64    `json:"canceled"`
	Deadlined      int64    `json:"deadlined"`
	PanicsContained int64   `json:"panics_contained"`
	WatchdogFired  int64    `json:"watchdog_fired"`
	CacheHits      int64    `json:"cache_hits"`
	CacheMisses    int64    `json:"cache_misses"`
	CacheEntries   int      `json:"cache_entries"`
	Sessions       []string `json:"sessions,omitempty"`
}

// errResp builds a failure response.
func errResp(kind, format string, args ...any) *Response {
	return &Response{ErrKind: kind, Error: fmt.Sprintf(format, args...)}
}

// decodeRequest parses one protocol line.
func decodeRequest(line []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return nil, err
	}
	if req.Op == "" {
		return nil, fmt.Errorf("missing op")
	}
	return &req, nil
}
