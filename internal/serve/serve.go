// Package serve implements the crash-safe incremental porting daemon
// behind `atomig -serve`: a long-lived process that holds modules in
// named sessions, accepts function-level deltas, and answers port /
// explain-races / verify queries concurrently over a line-delimited
// JSON protocol (stdin/stdout and a Unix socket).
//
// The three load-bearing properties (docs/SERVE.md):
//
//   - Incremental analysis: detection verdicts are content-addressed
//     by function-body hash (atomig.DetectCache), so a one-function
//     edit re-analyzes one function and replays the rest.
//   - Per-request robustness: every request runs under a context
//     deadline with a watchdog behind it, wrapped in panic
//     containment — a crashing request returns a structured error and
//     evicts the session's (possibly poisoned) cache; the daemon
//     lives on.
//   - Service lifecycle: a bounded admission queue sheds load with a
//     typed `overloaded` response, shutdown drains in-flight work,
//     and health/stats report the serve.* metrics.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds concurrently admitted requests (in-flight and
	// queued); excess requests get an immediate `overloaded` response.
	// 0 selects 8.
	QueueDepth int
	// Deadline is the default per-request wall-clock budget (0 = 30s).
	// Requests may shorten it (DeadlineMS) but never extend it.
	Deadline time.Duration
	// Grace is how long past its deadline a request may run before the
	// watchdog declares it wedged, answers on its behalf, and counts
	// serve.watchdog_fired (0 = 2s).
	Grace time.Duration
	// Workers is the pipeline fan-out per port request (0 = 1).
	Workers int
	// Obs, when non-nil, backs the serve.* metrics and request spans.
	Obs *obs.Provider
	// CrashPath, when non-empty, is where the flight recorder dumps its
	// event tail when the watchdog fires, a panic is contained, or load
	// is shed (overload dumps are throttled to one per second).
	CrashPath string
	// TroubleWindow is how long after a shed request or missed deadline
	// /healthz keeps reporting degraded (0 = 10s).
	TroubleWindow time.Duration
	// FlightRecords bounds the flight recorder's in-memory event tail
	// (0 = 1024).
	FlightRecords int
}

// Server is one daemon instance. It may serve several connections
// (stdio and a Unix socket) concurrently; sessions are server-global.
type Server struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*session

	// slots is the admission semaphore; each token is a slot index
	// whose obs track carries that slot's request spans.
	slots    chan int
	inflight sync.WaitGroup
	live     atomic.Int64
	draining atomic.Bool

	// quit closes when a shutdown request commits; listeners stop
	// accepting and Wait returns after the drain.
	quit     chan struct{}
	quitOnce sync.Once

	// cancels maps in-flight request ids to their cancel functions.
	cancelMu sync.Mutex
	cancels  map[string]context.CancelFunc

	c serveCounters

	// opDur holds the per-op latency histograms, keyed by wire op name.
	opDur map[string]*obs.Histogram

	// lg/rec are the structured event log and the flight recorder. lg is
	// never nil (a recorder-only logger is built when the provider has
	// none), so handle() emits unconditionally; rec holds the bounded
	// tail the crash paths dump.
	lg  *obs.Logger
	rec *obs.Recorder

	// reqSeq numbers admitted requests: the server-generated rid
	// ("r000042") that threads one request's spans, log events, and
	// flight-recorder tail together even when the client sent no id.
	reqSeq atomic.Int64

	// troubleNS is the wall clock (UnixNano) of the last shed request or
	// missed deadline; health() reports degraded within TroubleWindow.
	troubleNS atomic.Int64

	// dumpMu serializes crash-file writes; lastDumpNS throttles
	// overload-triggered dumps.
	dumpMu     sync.Mutex
	lastDumpNS int64

	// httpWG joins the -http listener's goroutines into Drain.
	httpWG sync.WaitGroup

	// faultInject, when non-nil, runs at the top of every execute with
	// the request's context — the chaos test's seam for injected
	// panics, stalls, and wedges. Never set in production.
	faultInject func(ctx context.Context, req *Request)
}

// serveCounters are the serve.* registry metrics (docs/OBSERVABILITY.md).
type serveCounters struct {
	requests   *obs.Counter
	ok         *obs.Counter
	failed     *obs.Counter
	overloaded *obs.Counter
	canceled   *obs.Counter
	deadlined  *obs.Counter
	panics     *obs.Counter
	watchdog   *obs.Counter
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	inflight   *obs.Gauge
	durationMS *obs.Histogram
	dumps      *obs.Counter
}

// New builds a Server. Fields of opts are defaulted in place.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 30 * time.Second
	}
	if opts.Grace <= 0 {
		opts.Grace = 2 * time.Second
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.TroubleWindow <= 0 {
		opts.TroubleWindow = 10 * time.Second
	}
	if opts.FlightRecords <= 0 {
		opts.FlightRecords = 1024
	}
	if opts.Obs == nil {
		// stats/health must work even when no exporter is wired: back
		// the serve.* counters with a private in-memory registry.
		opts.Obs = obs.New()
	}
	s := &Server{
		opts:     opts,
		sessions: make(map[string]*session),
		slots:    make(chan int, opts.QueueDepth),
		quit:     make(chan struct{}),
		cancels:  make(map[string]context.CancelFunc),
	}
	for i := 0; i < opts.QueueDepth; i++ {
		s.slots <- i
	}
	p := opts.Obs
	s.c = serveCounters{
		requests:   p.Counter("serve.requests_total"),
		ok:         p.Counter("serve.requests_ok"),
		failed:     p.Counter("serve.requests_failed"),
		overloaded: p.Counter("serve.requests_overloaded"),
		canceled:   p.Counter("serve.requests_canceled"),
		deadlined:  p.Counter("serve.requests_deadlined"),
		panics:     p.Counter("serve.panics_contained"),
		watchdog:   p.Counter("serve.watchdog_fired"),
		cacheHits:  p.Counter("serve.cache_hits"),
		cacheMiss:  p.Counter("serve.cache_misses"),
		inflight:   p.Gauge("serve.requests_inflight"),
		durationMS: p.Histogram("serve.request_ms"),
		dumps:      p.Counter("serve.flight_dumps_written"),
	}
	// Per-op latency histograms. Names are spelled out (not built from
	// the wire op) so the catalog drift gate sees them and so
	// "explain-races" maps onto a convention-legal name. cancel and
	// shutdown bypass handle() and have no duration to record.
	s.opDur = map[string]*obs.Histogram{
		"load":          p.Histogram("serve.op_load_duration_micros"),
		"edit":          p.Histogram("serve.op_edit_duration_micros"),
		"port":          p.Histogram("serve.op_port_duration_micros"),
		"dump":          p.Histogram("serve.op_dump_duration_micros"),
		"explain-races": p.Histogram("serve.op_explain_races_duration_micros"),
		"verify":        p.Histogram("serve.op_verify_duration_micros"),
		"stress":        p.Histogram("serve.op_stress_duration_micros"),
		"optimize":      p.Histogram("serve.op_optimize_duration_micros"),
		"stats":         p.Histogram("serve.op_stats_duration_micros"),
		"health":        p.Histogram("serve.op_health_duration_micros"),
	}
	// The flight recorder is always on (its memory is bounded); the
	// event log rides the provider's logger when one is attached
	// (-log), else a recorder-only logger so the crash tail exists
	// regardless of flags. Completed trace spans mirror in too.
	s.rec = obs.NewRecorder(opts.FlightRecords)
	s.lg = p.Log()
	if s.lg == nil {
		s.lg = obs.NewLogger(nil)
	}
	s.lg.SetRecorder(s.rec)
	if p.Tracer != nil {
		p.Tracer.MirrorTo(s.lg)
	}
	return s
}

// rid generates the server-side request ID threaded through spans, log
// events, and flight dumps.
func (s *Server) rid() string {
	return fmt.Sprintf("r%06d", s.reqSeq.Add(1))
}

// markTrouble records a degraded-health signal (shed load or a missed
// deadline); /healthz reports degraded for TroubleWindow afterwards.
func (s *Server) markTrouble() {
	s.troubleNS.Store(time.Now().UnixNano())
}

// health is the /healthz verdict: draining once shutdown began,
// degraded while the queue is full or within TroubleWindow of shed
// load / a missed deadline, ok otherwise.
func (s *Server) health() obs.Health {
	if s.draining.Load() {
		return obs.Health{Status: "draining", Reason: "shutdown in progress"}
	}
	if int(s.live.Load()) >= s.opts.QueueDepth {
		return obs.Health{Status: "degraded", Reason: "admission queue full"}
	}
	if t := s.troubleNS.Load(); t != 0 && time.Since(time.Unix(0, t)) < s.opts.TroubleWindow {
		return obs.Health{Status: "degraded", Reason: "recent overload or deadline miss"}
	}
	return obs.Health{Status: "ok"}
}

// ListenHTTP mounts the live-telemetry surface (obs.Handler: /metrics,
// /metrics.json, /healthz, /debug/pprof) on addr and returns the bound
// address. The listener participates in the daemon's lifecycle: it
// closes when shutdown commits, and Drain waits for its goroutines.
func (s *Server) ListenHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: obs.Handler(s.opts.Obs, s.health)}
	s.httpWG.Add(2)
	go func() {
		defer s.httpWG.Done()
		<-s.quit
		hs.Close()
	}()
	go func() {
		defer s.httpWG.Done()
		// Serve returns ErrServerClosed after the shutdown Close.
		_ = hs.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// dumpFlight writes the flight recorder's tail to the crash file. The
// reason and the triggering request's IDs go into the envelope tags;
// overload dumps are throttled so a shed storm cannot thrash the disk.
func (s *Server) dumpFlight(reason, rid string, req *Request) {
	if s.opts.CrashPath == "" {
		return
	}
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()
	now := time.Now().UnixNano()
	if reason == "overload" && now-s.lastDumpNS < int64(time.Second) {
		return
	}
	s.lastDumpNS = now
	tags := map[string]string{"op": req.Op}
	if rid != "" {
		tags["rid"] = rid
	}
	if req.ID != "" {
		tags["request_id"] = req.ID
	}
	if err := os.WriteFile(s.opts.CrashPath, s.rec.Dump(reason, tags), 0o644); err == nil {
		s.c.dumps.Inc()
	}
}

// Shutdown begins the drain: admission closes (new requests get a
// shutting_down response), listeners stop accepting. Safe to call
// more than once.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.quitOnce.Do(func() { close(s.quit) })
}

// Done reports the shutdown channel for listener loops.
func (s *Server) Done() <-chan struct{} { return s.quit }

// Drain blocks until every admitted request has finished and the
// -http listener (if mounted) has stopped. Call Shutdown first — the
// listener only stops once the quit channel closes.
func (s *Server) Drain() {
	s.inflight.Wait()
	s.httpWG.Wait()
}

// ServeConn runs the request loop on one connection until EOF or
// shutdown. Responses are written line-buffered under a write mutex;
// they may interleave across requests (clients correlate by id). The
// returned error is the scanner's (nil on clean EOF).
func (s *Server) ServeConn(conn io.ReadWriter) error {
	var wmu sync.Mutex
	out := bufio.NewWriter(conn)
	send := func(r *Response) {
		wmu.Lock()
		defer wmu.Unlock()
		b, err := json.Marshal(r)
		if err != nil {
			// A response that cannot marshal is an internal bug; send a
			// minimal error line so the client is never left hanging.
			b, _ = json.Marshal(&Response{ID: r.ID, ErrKind: ErrInternal, Error: "response marshal failed"})
		}
		out.Write(b)
		out.WriteByte('\n')
		out.Flush()
	}

	// Requests admitted from this connection; the loop waits for them
	// before returning so a closing connection never strands a writer.
	var connWG sync.WaitGroup
	defer connWG.Wait()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		req, err := decodeRequest(line)
		if err != nil {
			s.c.requests.Inc()
			s.c.failed.Inc()
			r := errResp(ErrBadRequest, "malformed request: %v", err)
			send(r)
			continue
		}
		switch req.Op {
		case "shutdown":
			// Lifecycle op: commit the drain, answer after it completes
			// so a scripted client can `shutdown` and trust the daemon
			// is quiescent when the response arrives.
			s.c.requests.Inc()
			s.Shutdown()
			s.Drain()
			s.c.ok.Inc()
			send(&Response{ID: req.ID, OK: true})
			return nil
		case "cancel":
			// Control op: bypasses admission so a full queue can still
			// be canceled into health.
			s.c.requests.Inc()
			if s.cancelRequest(req.Target) {
				s.c.ok.Inc()
				send(&Response{ID: req.ID, OK: true})
			} else {
				s.c.failed.Inc()
				r := errResp(ErrBadRequest, "no in-flight request %q", req.Target)
				r.ID = req.ID
				send(r)
			}
			continue
		}
		if s.draining.Load() {
			s.c.requests.Inc()
			s.c.failed.Inc()
			r := errResp(ErrShutdown, "server is draining")
			r.ID = req.ID
			send(r)
			continue
		}
		// Admission control: take a slot or shed the request now. A shed
		// marks health degraded and dumps the flight tail (throttled) —
		// sustained overload is exactly when the recent-event record
		// matters.
		var slot int
		select {
		case slot = <-s.slots:
		default:
			s.c.requests.Inc()
			s.c.overloaded.Inc()
			s.markTrouble()
			s.lg.Event("serve.request_shed").Str("id", req.ID).Str("op", req.Op).Emit()
			s.dumpFlight("overload", "", req)
			r := errResp(ErrOverloaded, "queue full (%d in flight)", s.opts.QueueDepth)
			r.ID = req.ID
			send(r)
			continue
		}
		s.inflight.Add(1)
		connWG.Add(1)
		go func(req *Request, slot int) {
			defer connWG.Done()
			defer s.inflight.Done()
			defer func() { s.slots <- slot }()
			s.handle(req, slot, send)
		}(req, slot)
	}
	return sc.Err()
}

// ListenUnix binds the daemon's Unix socket. A stale socket file from
// a crashed previous daemon is detected by dialing: if nothing
// answers, the file is removed and the address reused; if a live
// daemon answers, binding fails — two daemons on one socket would
// split the session namespace.
func ListenUnix(path string) (net.Listener, error) {
	l, err := net.Listen("unix", path)
	if err == nil {
		return l, nil
	}
	if conn, derr := net.DialTimeout("unix", path, 250*time.Millisecond); derr == nil {
		conn.Close()
		return nil, fmt.Errorf("socket %s already served by a live daemon", path)
	}
	if rerr := os.Remove(path); rerr != nil {
		return nil, err
	}
	return net.Listen("unix", path)
}

// ServeListener accepts connections until shutdown. Each connection
// gets its own request loop; sessions are shared across connections.
func (s *Server) ServeListener(l net.Listener) error {
	go func() {
		<-s.quit
		l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.ServeConn(conn)
		}()
	}
}

// handle runs one admitted request to completion: deadline, watchdog,
// panic containment, single-shot response.
func (s *Server) handle(req *Request, slot int, send func(*Response)) {
	start := time.Now()
	rid := s.rid()
	s.c.requests.Inc()
	s.c.inflight.Add(1)
	s.live.Add(1)
	s.lg.Event("serve.request_admitted").
		Str("rid", rid).Str("id", req.ID).Str("op", req.Op).Int("slot", int64(slot)).Emit()
	defer func() {
		s.c.inflight.Add(-1)
		s.live.Add(-1)
		s.c.durationMS.Observe(time.Since(start).Milliseconds())
	}()

	deadline := s.opts.Deadline
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS) * time.Millisecond; d < deadline {
			deadline = d
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	if req.ID != "" {
		s.registerCancel(req.ID, cancel)
		defer s.unregisterCancel(req.ID)
	}

	// Single-shot response: the first of {worker result, watchdog
	// verdict} wins; the loser's reply is dropped.
	var once sync.Once
	reply := func(r *Response) {
		once.Do(func() {
			r.ID = req.ID
			if r.OK {
				s.c.ok.Inc()
			} else {
				s.c.failed.Inc()
				switch r.ErrKind {
				case ErrDeadline:
					s.c.deadlined.Inc()
					s.markTrouble()
				case ErrCanceled:
					s.c.canceled.Inc()
				}
			}
			s.lg.Event("serve.request_done").
				Str("rid", rid).Str("id", req.ID).Str("op", req.Op).
				Bool("ok", r.OK).Str("err_kind", r.ErrKind).
				Int("dur_us", time.Since(start).Microseconds()).Emit()
			send(r)
		})
	}

	// Watchdog: a request that ignores its context past the grace is
	// wedged — answer for it and cancel harder. Its goroutine keeps
	// draining in the background until an engine budget stops it; the
	// slot is only returned when it does, so wedged work also counts
	// against admission (by design: a daemon wedged N times is
	// overloaded, not healthy).
	wd := time.AfterFunc(deadline+s.opts.Grace, func() {
		s.c.watchdog.Inc()
		s.lg.Event("serve.watchdog_fired").
			Str("rid", rid).Str("id", req.ID).Str("op", req.Op).Emit()
		cancel()
		reply(errResp(ErrDeadline, "request exceeded deadline %s and grace %s (watchdog)", deadline, s.opts.Grace))
		// The forensic record of what the wedged request was doing —
		// written after the client has its answer.
		s.dumpFlight("watchdog", rid, req)
	})
	defer wd.Stop()

	trk := s.opts.Obs.Track(fmt.Sprintf("serve.slot-%02d", slot))
	sp := trk.Begin("serve.request").Arg("op", req.Op).Arg("id", req.ID).Arg("rid", rid)
	resp := s.execute(ctx, req, rid)
	sp.Arg("ok", resp.OK).End()
	if h := s.opDur[req.Op]; h != nil {
		h.Observe(time.Since(start).Microseconds())
	}

	if !resp.OK && resp.ErrKind == "" {
		// Map context outcomes onto typed kinds for uniform clients.
		switch ctx.Err() {
		case context.DeadlineExceeded:
			resp.ErrKind = ErrDeadline
		case context.Canceled:
			resp.ErrKind = ErrCanceled
		default:
			resp.ErrKind = ErrInternal
		}
	}
	reply(resp)
}

// execute dispatches one request with panic containment: a crash in
// any handler returns a structured internal error and evicts the
// session's detection cache (it may hold entries published by the
// crashed worker), leaving the daemon healthy.
func (s *Server) execute(ctx context.Context, req *Request, rid string) (resp *Response) {
	sess := s.lookup(req.Session)
	defer func() {
		if r := recover(); r != nil {
			s.c.panics.Inc()
			if sess != nil {
				sess.poison()
			}
			resp = errResp(ErrInternal, "contained panic in %s: %v", req.Op, r)
			// The stack goes to the trace args, not the wire: clients
			// get a stable one-line error, operators get the detail.
			s.opts.Obs.Track("serve.errors").Begin("serve.panic_contained").
				Arg("op", req.Op).Arg("stack", string(debug.Stack())).End()
			s.lg.Event("serve.panic_contained").
				Str("rid", rid).Str("id", req.ID).Str("op", req.Op).
				Str("panic", fmt.Sprint(r)).Emit()
			s.dumpFlight("panic", rid, req)
		}
	}()
	if s.faultInject != nil {
		s.faultInject(ctx, req)
	}
	switch req.Op {
	case "load":
		return s.opLoad(ctx, req)
	case "edit":
		return s.opEdit(ctx, req, sess)
	case "port":
		return s.opPort(ctx, req, sess)
	case "dump":
		return s.opDump(req, sess)
	case "explain-races":
		return s.opExplain(ctx, req, sess)
	case "verify":
		return s.opVerify(ctx, req, sess)
	case "stress":
		return s.opStress(ctx, req, sess)
	case "optimize":
		return s.opOptimize(ctx, req, sess)
	case "stats", "health":
		return s.opStats()
	default:
		return errResp(ErrBadRequest, "unknown op %q", req.Op)
	}
}

// lookup resolves a request's session (nil when absent).
func (s *Server) lookup(name string) *session {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[name]
}

// install publishes a freshly loaded session under its name.
func (s *Server) install(name string, sess *session) {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	s.sessions[name] = sess
	s.mu.Unlock()
}

// sessionNames returns the sorted session inventory.
func (s *Server) sessionNames() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for n := range s.sessions {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

func (s *Server) registerCancel(id string, c context.CancelFunc) {
	s.cancelMu.Lock()
	s.cancels[id] = c
	s.cancelMu.Unlock()
}

func (s *Server) unregisterCancel(id string) {
	s.cancelMu.Lock()
	delete(s.cancels, id)
	s.cancelMu.Unlock()
}

// cancelRequest cancels the in-flight request with the given id.
func (s *Server) cancelRequest(id string) bool {
	s.cancelMu.Lock()
	c, ok := s.cancels[id]
	s.cancelMu.Unlock()
	if ok {
		c()
	}
	return ok
}

// trimSpace is a tiny allocation-free TrimSpace for the hot read loop.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 {
		c := b[len(b)-1]
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			break
		}
		b = b[:len(b)-1]
	}
	return b
}
