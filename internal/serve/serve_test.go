// Conformance tests for the daemon: the protocol behaves as documented
// in docs/SERVE.md, and — the load-bearing contract — daemon output is
// byte-identical to a cold `atomig -j 1` CLI run on the same module,
// cold, warm, and after function-level edits.
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/leakcheck"
	"repro/internal/minic"
)

// rwPair glues two pipe halves into the io.ReadWriter ServeConn wants.
type rwPair struct {
	io.Reader
	io.Writer
}

// client drives a Server through the wire protocol over in-memory
// pipes, correlating responses by id exactly like a real client.
type client struct {
	t *testing.T
	w io.Writer

	mu      sync.Mutex
	waiters map[string]chan *Response
	got     map[string]int // responses seen per id
	anon    int            // responses with no id (malformed-line errors)

	done chan struct{}
}

// startServer builds a Server and connects a client to it.
func startServer(t *testing.T, opts Options) (*Server, *client) {
	t.Helper()
	srv := New(opts)
	return srv, connect(t, srv)
}

// connect wires a fresh client connection to srv. Cleanup closes the
// client side (EOF to the server loop), waits for the server loop to
// drain, then unwinds the reader — so leakcheck sees a quiet world.
func connect(t *testing.T, srv *Server) *client {
	t.Helper()
	clientRead, serverWrite := io.Pipe()
	serverRead, clientWrite := io.Pipe()
	c := &client{
		t: t, w: clientWrite,
		waiters: make(map[string]chan *Response),
		got:     make(map[string]int),
		done:    make(chan struct{}),
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ServeConn(rwPair{serverRead, serverWrite})
	}()
	go c.readLoop(clientRead)
	t.Cleanup(func() {
		clientWrite.Close()
		<-serveDone
		serverWrite.Close()
		<-c.done
	})
	return c
}

func (c *client) readLoop(r io.Reader) {
	defer close(c.done)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			c.t.Errorf("client: unparsable response line: %v", err)
			continue
		}
		c.mu.Lock()
		if resp.ID == "" {
			c.anon++
			c.mu.Unlock()
			continue
		}
		c.got[resp.ID]++
		ch := c.waiters[resp.ID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- &resp:
			default:
				c.t.Errorf("client: duplicate response for id %q", resp.ID)
			}
		}
	}
}

// raw writes one line verbatim (for malformed-input tests).
func (c *client) raw(line string) {
	if _, err := io.WriteString(c.w, line+"\n"); err != nil {
		c.t.Errorf("client write: %v", err)
	}
}

// expect registers interest in an id before sending it, for callers
// that need to send and wait separately (in-flight cancellation).
func (c *client) expect(id string) chan *Response {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	c.waiters[id] = ch
	c.mu.Unlock()
	return ch
}

func (c *client) send(req *Request) {
	b, err := json.Marshal(req)
	if err != nil {
		c.t.Errorf("client: marshal request %q: %v", req.ID, err)
		return
	}
	c.raw(string(b))
}

// call sends a request and waits for its response.
func (c *client) call(req *Request) *Response {
	ch := c.expect(req.ID)
	c.send(req)
	select {
	case r := <-ch:
		return r
	case <-time.After(180 * time.Second):
		c.t.Errorf("client: timed out waiting for response %q", req.ID)
		return &Response{ID: req.ID, ErrKind: "client_timeout", Error: "test client timeout"}
	}
}

// anonCount reads the malformed-line response counter.
func (c *client) anonCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.anon
}

func mustOK(t *testing.T, r *Response) *Response {
	t.Helper()
	if !r.OK {
		t.Fatalf("request %q failed: %s: %s", r.ID, r.ErrKind, r.Error)
	}
	return r
}

// cliPort runs the exact pipeline `atomig -j 1` runs and renders the
// ported module — the byte-identity reference.
func cliPort(t *testing.T, m *ir.Module) string {
	t.Helper()
	opts := atomig.DefaultOptions()
	opts.Workers = 1
	if _, err := atomig.Port(m, opts); err != nil {
		t.Fatalf("reference port: %v", err)
	}
	return m.String()
}

func cliPortSource(t *testing.T, name, src string) string {
	t.Helper()
	res, err := minic.Compile(name, src)
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}
	return cliPort(t, res.Module)
}

func cliPortAIR(t *testing.T, text string) string {
	t.Helper()
	m, err := ir.ParseModule(text)
	if err != nil {
		t.Fatalf("reference parse: %v", err)
	}
	return cliPort(t, m)
}

const smallSrc = `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) { while (flag == 0) { } int m = msg; msg = m; }
`

// TestConformanceColdWarmEdit is the acceptance test for the
// incremental tentpole: cold, warm, and post-edit daemon output is
// byte-identical to the CLI; the warm single-function re-port hits the
// cache everywhere except the edited function and is >= 10x faster
// than the cold full run.
func TestConformanceColdWarmEdit(t *testing.T) {
	leakcheck.Check(t)
	src, _ := appgen.GenerateLarge(appgen.LargeSpec("conf.c", 16000, 7))

	// The byte-identity reference: exactly what `atomig -j 1` renders
	// for this source.
	ref := cliPortSource(t, "conf.c", src)

	_, c := startServer(t, Options{})

	// The cold-full-run baseline is measured over the same protocol as
	// the warm run: load the source and port it with an empty cache,
	// rendering the result — what every request would cost if the
	// daemon kept no state between them.
	coldStart := time.Now()
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "conf.c", Source: src}))
	cold := mustOK(t, c.call(&Request{ID: "cold", Op: "port", Emit: true}))
	coldDur := time.Since(coldStart)
	if cold.Text != ref {
		t.Fatalf("cold daemon output differs from CLI output (%d vs %d bytes)", len(cold.Text), len(ref))
	}
	if cold.Report.CacheHits != 0 || cold.Report.CacheMisses == 0 {
		t.Errorf("cold port: hits=%d misses=%d, want 0 hits and >0 misses",
			cold.Report.CacheHits, cold.Report.CacheMisses)
	}

	warm := mustOK(t, c.call(&Request{ID: "warm", Op: "port", Emit: true}))
	if warm.Text != ref {
		t.Errorf("warm daemon output differs from CLI output")
	}
	if warm.Report.CacheMisses != 0 || warm.Report.CacheHits == 0 {
		t.Errorf("warm port: hits=%d misses=%d, want all hits",
			warm.Report.CacheHits, warm.Report.CacheMisses)
	}

	// Single-function edits: give @lg_compute<r> the body of
	// @lg_compute<r+1> (same signature; the generator never calls
	// fillers, so exactly one post-inline function body changes per
	// round). Three rounds, taking the fastest re-port: the host has one
	// CPU and a GC cycle landing inside the timed window would otherwise
	// dominate a single sample.
	dump := mustOK(t, c.call(&Request{ID: "dump1", Op: "dump"}))
	base, err := ir.ParseModule(dump.Text)
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	warmDur := time.Duration(1<<62 - 1)
	for r := 0; r < 3; r++ {
		donor := base.Func(fmt.Sprintf("lg_compute%d", r+1))
		if donor == nil || base.Func(fmt.Sprintf("lg_compute%d", r)) == nil {
			t.Fatal("generated module lacks the expected filler functions")
		}
		delta := strings.Replace(ir.FuncString(donor),
			fmt.Sprintf("@lg_compute%d(", r+1), fmt.Sprintf("@lg_compute%d(", r), 1)
		mustOK(t, c.call(&Request{ID: fmt.Sprintf("edit%d", r), Op: "edit", Replace: []string{delta}}))

		runtime.GC()
		warmStart := time.Now()
		edited := mustOK(t, c.call(&Request{ID: fmt.Sprintf("warm2-%d", r), Op: "port"}))
		if d := time.Since(warmStart); d < warmDur {
			warmDur = d
		}
		if edited.Report.CacheMisses != 1 {
			t.Errorf("post-edit port %d: misses=%d, want 1 (the edited function)", r, edited.Report.CacheMisses)
		}
		if edited.Report.CacheHits == 0 {
			t.Errorf("post-edit port %d: no cache hits", r)
		}
	}

	dump2 := mustOK(t, c.call(&Request{ID: "dump2", Op: "dump"}))
	ref2 := cliPortAIR(t, dump2.Text)
	emit2 := mustOK(t, c.call(&Request{ID: "emit2", Op: "port", Emit: true}))
	if emit2.Text != ref2 {
		t.Errorf("post-edit daemon output differs from CLI port of the dumped module")
	}

	if coldDur < 10*warmDur {
		t.Errorf("warm re-port not >=10x faster than cold full run: cold=%v warm=%v (%.1fx)",
			coldDur, warmDur, float64(coldDur)/float64(warmDur))
	} else {
		t.Logf("cold=%v warm=%v (%.1fx)", coldDur, warmDur, float64(coldDur)/float64(warmDur))
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestProtocolErrors checks every typed failure a well-behaved client
// can trigger, and that none of them damages the session.
func TestProtocolErrors(t *testing.T) {
	leakcheck.Check(t)
	_, c := startServer(t, Options{})

	cases := []struct {
		req  *Request
		kind string
	}{
		{&Request{ID: "e1", Op: "port"}, ErrNoModule},
		{&Request{ID: "e2", Op: "frobnicate"}, ErrBadRequest},
		{&Request{ID: "e3", Op: "load", Name: "x.c", Source: "int x = = 1;"}, ErrBadRequest},
		{&Request{ID: "e4", Op: "load", Name: "x.c"}, ErrBadRequest},
		{&Request{ID: "e5", Op: "load", Source: "int x;"}, ErrBadRequest},
		{&Request{ID: "e6", Op: "cancel", Target: "nope"}, ErrBadRequest},
		{&Request{ID: "e7", Op: "explain-races"}, ErrNoModule},
		{&Request{ID: "e8", Op: "edit", Replace: []string{"define"}}, ErrNoModule},
	}
	for _, tc := range cases {
		r := c.call(tc.req)
		if r.OK || r.ErrKind != tc.kind {
			t.Errorf("%s: got ok=%t kind=%q (%s), want kind %q", tc.req.ID, r.OK, r.ErrKind, r.Error, tc.kind)
		}
	}

	// Malformed line: a structured error response with no id.
	c.raw(`{"op":`)
	deadline := time.Now().Add(5 * time.Second)
	for c.anonCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.anonCount(); n != 1 {
		t.Errorf("malformed line: %d anonymous error responses, want 1", n)
	}

	// A rejected delta leaves the session fully usable.
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))
	ref := cliPortSource(t, "small.c", smallSrc)
	r := c.call(&Request{ID: "bad-edit", Op: "edit", Replace: []string{"define i64 @broken("}})
	if r.OK || r.ErrKind != ErrBadRequest {
		t.Errorf("bad edit: got ok=%t kind=%q, want bad_request", r.OK, r.ErrKind)
	}
	p := mustOK(t, c.call(&Request{ID: "after", Op: "port", Emit: true}))
	if p.Text != ref {
		t.Errorf("session output changed after a rejected edit")
	}

	st := mustOK(t, c.call(&Request{ID: "st", Op: "health"}))
	if st.Stats == nil || !st.Stats.Healthy {
		t.Errorf("health: %+v, want healthy", st.Stats)
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestSessionsAreIndependent checks that named sessions hold distinct
// modules and caches.
func TestSessionsAreIndependent(t *testing.T) {
	leakcheck.Check(t)
	_, c := startServer(t, Options{})

	mustOK(t, c.call(&Request{ID: "l1", Op: "load", Session: "a", Name: "a.c", Source: smallSrc}))
	mustOK(t, c.call(&Request{ID: "l2", Op: "load", Session: "b", Name: "b.air", Lang: "air",
		Source: "@g = global i64\ndefine i64 @get() {\nentry:\n  %t0 = load i64, @g\n  ret %t0\n}\n"}))

	ra := mustOK(t, c.call(&Request{ID: "p1", Op: "port", Session: "a"}))
	rb := mustOK(t, c.call(&Request{ID: "p2", Op: "port", Session: "b"}))
	if ra.Module == rb.Module {
		t.Errorf("sessions returned the same module name %q", ra.Module)
	}
	if r := c.call(&Request{ID: "p3", Op: "port", Session: "c"}); r.OK || r.ErrKind != ErrNoModule {
		t.Errorf("unloaded session: got ok=%t kind=%q, want no_module", r.OK, r.ErrKind)
	}

	st := mustOK(t, c.call(&Request{ID: "st", Op: "stats"}))
	want := []string{"a", "b"}
	if len(st.Stats.Sessions) != 2 || st.Stats.Sessions[0] != want[0] || st.Stats.Sessions[1] != want[1] {
		t.Errorf("sessions = %v, want %v", st.Stats.Sessions, want)
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestOptimizeSaltFlip is the regression for the optimize/cache-salt
// contract: the optimize options are folded into the session's
// CacheSalt and snapshot, so a daemon flipping them between warm ports
// can never replay detection or weakening state computed under a
// different configuration — each flip starts from a cold cache, and
// only a repeat request with identical options replays the memoized
// weakening result.
func TestOptimizeSaltFlip(t *testing.T) {
	leakcheck.Check(t)
	prog := corpus.Get("mp")
	if prog == nil {
		t.Fatal("corpus program mp missing")
	}
	_, c := startServer(t, Options{})
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "mp.c", Source: prog.Source}))

	// Warm the detection cache under the optimize-off configuration.
	cold := mustOK(t, c.call(&Request{ID: "p0", Op: "port"}))
	if cold.Report.CacheMisses == 0 {
		t.Fatalf("cold port: misses=%d, want > 0", cold.Report.CacheMisses)
	}
	warm := mustOK(t, c.call(&Request{ID: "p1", Op: "port"}))
	if warm.Report.CacheMisses != 0 || warm.Report.CacheHits == 0 {
		t.Fatalf("warm port: hits=%d misses=%d, want all hits", warm.Report.CacheHits, warm.Report.CacheMisses)
	}

	// First optimize: the option flip (off -> on) re-salts the cache, so
	// the port inside it must run cold — a warm replay here would be
	// detection state from a different configuration.
	opt := &Request{ID: "o1", Op: "optimize", Entries: prog.MCEntries, MaxExecs: 50000, Emit: true}
	o1 := mustOK(t, c.call(opt))
	if o1.Replayed {
		t.Errorf("first optimize replayed a memo that cannot exist")
	}
	if o1.Report == nil || o1.Report.CacheMisses == 0 {
		t.Errorf("optimize after salt flip reused the stale detection cache: %+v", o1.Report)
	}
	if o1.Optimize == nil || o1.Verdict != "verified" || o1.Reason != "" {
		t.Fatalf("optimize: verdict=%q reason=%q optimize=%v, want verified", o1.Verdict, o1.Reason, o1.Optimize)
	}
	if o1.Optimize.CostAfter >= o1.Optimize.CostBefore {
		t.Errorf("optimize did not reduce cost: %d -> %d", o1.Optimize.CostBefore, o1.Optimize.CostAfter)
	}
	if o1.Text == "" || o1.Text == cliPortSource(t, "mp.c", prog.Source) {
		t.Errorf("optimize -emit returned un-weakened module text")
	}

	// Same options again: the memoized result replays, byte-identical.
	opt.ID = "o2"
	o2 := mustOK(t, c.call(opt))
	if !o2.Replayed {
		t.Errorf("repeat optimize with identical options did not replay the memo")
	}
	if o2.Text != o1.Text || o2.Optimize.CostAfter != o1.Optimize.CostAfter {
		t.Errorf("replayed optimize differs from the original")
	}

	// Flip an option (cost-model arch): the memo must not replay, and
	// the detection cache must run cold again under the new salt.
	o3 := mustOK(t, c.call(&Request{ID: "o3", Op: "optimize", Entries: prog.MCEntries,
		MaxExecs: 50000, Arch: "power"}))
	if o3.Replayed {
		t.Errorf("optimize with a flipped arch replayed the stale memo")
	}
	if o3.Report == nil || o3.Report.CacheMisses == 0 {
		t.Errorf("optimize with a flipped arch reused the stale detection cache: %+v", o3.Report)
	}
	if o3.Optimize.Arch != "power" || o3.Optimize.CostBefore == o1.Optimize.CostBefore {
		t.Errorf("flipped arch not reflected: arch=%q cost %d vs %d",
			o3.Optimize.Arch, o3.Optimize.CostBefore, o1.Optimize.CostBefore)
	}

	// Flip the race-detection flag: again no replay.
	o4 := mustOK(t, c.call(&Request{ID: "o4", Op: "optimize", Entries: prog.MCEntries,
		MaxExecs: 50000, Arch: "power", NoRaces: true}))
	if o4.Replayed {
		t.Errorf("optimize with a flipped race flag replayed the stale memo")
	}

	// Bad arch is a typed client error, not an engine failure.
	if r := c.call(&Request{ID: "o5", Op: "optimize", Entries: prog.MCEntries, Arch: "vax"}); r.OK || r.ErrKind != ErrBadRequest {
		t.Errorf("bad arch: got ok=%t kind=%q, want bad_request", r.OK, r.ErrKind)
	}
	// Missing entries likewise.
	if r := c.call(&Request{ID: "o6", Op: "optimize"}); r.OK || r.ErrKind != ErrBadRequest {
		t.Errorf("missing entries: got ok=%t kind=%q, want bad_request", r.OK, r.ErrKind)
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestVerifyAndExplain drives the analysis ops end to end on the
// message-passing shape: explain-races finds the racy flag, verify
// passes on the ported module.
func TestVerifyAndExplain(t *testing.T) {
	leakcheck.Check(t)
	_, c := startServer(t, Options{})
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))

	if r := c.call(&Request{ID: "x0", Op: "explain-races"}); r.OK || r.ErrKind != ErrBadRequest {
		t.Errorf("explain without entries: got ok=%t kind=%q, want bad_request", r.OK, r.ErrKind)
	}
	ex := mustOK(t, c.call(&Request{ID: "x1", Op: "explain-races", Entries: []string{"reader", "writer"}}))
	if !strings.Contains(ex.Text, "@flag") {
		t.Errorf("explain-races output lacks @flag:\n%s", ex.Text)
	}

	mustOK(t, c.call(&Request{ID: "p1", Op: "port"})) // warm the cache
	v := mustOK(t, c.call(&Request{ID: "v1", Op: "verify", Entries: []string{"reader", "writer"}, MaxExecs: 20000}))
	if v.Verdict == "violated" || v.Verdict == "racy" {
		t.Errorf("verify after port: verdict=%q reason=%q, want verified or unknown", v.Verdict, v.Reason)
	}
	if v.Report == nil || v.Report.CacheHits == 0 {
		t.Errorf("verify did not reuse the warm detection cache: %+v", v.Report)
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}

// TestStressOp: the schedule-fuzzing sweep over the ported session
// module — a clean verdict on the ported program, the full sweep
// summary, and byte-identical findings on a repeat call (the grid is
// seeded, so the op is deterministic).
func TestStressOp(t *testing.T) {
	leakcheck.Check(t)
	_, c := startServer(t, Options{})
	mustOK(t, c.call(&Request{ID: "load", Op: "load", Name: "small.c", Source: smallSrc}))

	if r := c.call(&Request{ID: "s0", Op: "stress"}); r.OK || r.ErrKind != ErrBadRequest {
		t.Errorf("stress without entries: got ok=%t kind=%q, want bad_request", r.OK, r.ErrKind)
	}

	req := &Request{ID: "s1", Op: "stress", Entries: []string{"reader", "writer"}, Seeds: 20}
	s1 := mustOK(t, c.call(req))
	if s1.Stress == nil {
		t.Fatal("stress response lacks the sweep summary")
	}
	if s1.Verdict != "pass" {
		t.Errorf("ported program stressed %q; findings: %v", s1.Verdict, s1.Stress.Findings)
	}
	if s1.Stress.Schedules == 0 || s1.Stress.Steps == 0 || s1.Stress.Forwarded == 0 {
		t.Errorf("empty sweep summary: %+v", s1.Stress)
	}
	if s1.Executions != s1.Stress.Schedules {
		t.Errorf("Executions=%d != Schedules=%d", s1.Executions, s1.Stress.Schedules)
	}

	req2 := *req
	req2.ID = "s2"
	s2 := mustOK(t, c.call(&req2))
	if s2.Stress.Steps != s1.Stress.Steps || !reflect.DeepEqual(s2.Stress.Findings, s1.Stress.Findings) {
		t.Errorf("stress op not deterministic:\nfirst  %+v\nsecond %+v", s1.Stress, s2.Stress)
	}

	mustOK(t, c.call(&Request{ID: "bye", Op: "shutdown"}))
}
