// Session state: each named session owns one module and its
// incremental-analysis companion state. The base module is the
// un-ported truth (what dump renders and edits mutate); the analyzed
// snapshot is a pre-inlined clone whose function-body hashes key the
// detection cache. Ports clone the snapshot and run the pipeline with
// inlining off, which performs the exact mutation sequence the CLI's
// inline-then-analyze port performs — so daemon output is byte-
// identical to `atomig -j 1` on the dumped module (the conformance
// contract, tested in serve_test.go).
package serve

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/weaken"
)

// session is one named module plus its incremental state.
type session struct {
	name string

	// mu orders mutations (load, edit — exclusive) against queries
	// (port, dump, explain, verify — shared; they clone under the read
	// lock and release it before the expensive work).
	mu sync.RWMutex

	base   *ir.Module // un-ported truth
	snap   *ir.Module // analyzed snapshot: clone(base) + inline
	hashes []string   // FuncKey per snap.Funcs, under salt
	salt   string
	cache  *atomig.MemCache

	// optSalt is the weakening configuration of the last optimize
	// request ("" until one arrives). It is folded into the snapshot's
	// CacheSalt, so flipping any optimize option re-salts the detection
	// cache keys — the daemon can never replay detection or weakening
	// state computed under a different configuration (satellite
	// regression: TestOptimizeSaltFlip).
	optSalt string
	// opt memoizes the last optimize result, keyed by optSalt plus the
	// snapshot's function hashes; an edit or an option flip changes the
	// key and forces a recompute.
	opt *optMemo
}

// optMemo is one memoized optimize result: the weakened module text,
// the port report that produced it, and the weakening result.
type optMemo struct {
	key  string
	res  *weaken.Result
	rep  *atomig.Report
	text string
}

// portOptions returns the pipeline options every port of this session
// runs with. Inline is off because the snapshot is already inlined;
// everything else matches atomig.DefaultOptions, the CLI default.
// optSalt is the session's active weakening configuration, folded into
// the detection-cache salt (see the optSalt field).
func portOptions(optSalt string) atomig.Options {
	opts := atomig.DefaultOptions()
	opts.Inline = false
	opts.OptimizeSalt = optSalt
	return opts
}

// newSession compiles source (MiniC or AIR, by lang) and builds the
// analyzed snapshot. workers is the frontend fan-out (the daemon's
// Options.Workers); the compiled module is byte-identical for every
// count, preserving the conformance contract.
func newSession(name, source, lang string, workers int, prov *obs.Provider) (*session, error) {
	var m *ir.Module
	switch lang {
	case "air":
		pm, err := ir.ParseModule(source)
		if err != nil {
			return nil, err
		}
		m = pm
	case "c":
		res, err := minic.CompileOpts(name, source, minic.Options{Workers: workers, Obs: prov})
		if err != nil {
			return nil, err
		}
		m = res.Module
	default:
		return nil, fmt.Errorf("unknown lang %q (want c or air)", lang)
	}
	s := &session{name: name, base: m, cache: atomig.NewMemCache()}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// langOf resolves the source language from an explicit lang field or
// the load name's suffix.
func langOf(lang, name string) string {
	if lang != "" {
		return lang
	}
	if strings.HasSuffix(name, ".air") {
		return "air"
	}
	return "c"
}

// rebuild recomputes the analyzed snapshot and its function hashes
// from base. Called under the write lock (or before publication).
func (s *session) rebuild() error {
	snap, err := ir.CloneModule(s.base)
	if err != nil {
		return err
	}
	popts := portOptions(s.optSalt)
	analysis.Inline(snap, atomig.DefaultOptions().InlineOptions)
	s.snap = snap
	s.salt = atomig.CacheSalt(snap, popts)
	s.hashes = make([]string, len(snap.Funcs))
	for i, f := range snap.Funcs {
		s.hashes[i] = atomig.FuncKey(s.salt, f)
	}
	return nil
}

// edit applies a batch of function-level deltas transactionally: the
// whole batch lands on a clone, is verified, and only then replaces
// the session's module; any failure leaves the session untouched.
// Struct or global changes are not expressible as deltas — reload the
// module instead (docs/SERVE.md).
func (s *session) edit(replace []string, remove []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next, err := ir.CloneModule(s.base)
	if err != nil {
		return err
	}
	header := s.base.HeaderString()
	for i, text := range replace {
		f, err := parseFuncDelta(header, text)
		if err != nil {
			return fmt.Errorf("replace[%d]: %w", i, err)
		}
		if err := next.ReplaceFunc(f); err != nil {
			return fmt.Errorf("replace[%d] @%s: %w", i, f.Name, err)
		}
	}
	for _, name := range remove {
		if !next.RemoveFunc(name) {
			return fmt.Errorf("remove @%s: no such function", name)
		}
	}
	if err := ir.Verify(next); err != nil {
		return fmt.Errorf("delta leaves module invalid: %w", err)
	}
	s.base = next
	return s.rebuild()
}

// parseFuncDelta parses one AIR function definition against the
// session's header (structs and globals) and returns the function.
func parseFuncDelta(header, text string) (*ir.Func, error) {
	m, err := ir.ParseModule(header + "\n" + text)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) != 1 {
		return nil, fmt.Errorf("delta must contain exactly one function definition, got %d", len(m.Funcs))
	}
	return m.Funcs[0], nil
}

// port clones the analyzed snapshot and runs the cached pipeline on
// the clone under ctx. The expensive work happens outside the session
// lock — only the snapshot clone is taken under it, so concurrent
// ports proceed in parallel and edits order cleanly between them.
func (s *session) port(ctx context.Context, workers int, prov *obs.Provider) (*ir.Module, *atomig.Report, error) {
	s.mu.RLock()
	snap := s.snap
	hashes := s.hashes
	cache := s.cache
	optSalt := s.optSalt
	clone, err := ir.CloneModule(snap)
	s.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	opts := portOptions(optSalt)
	opts.Context = ctx
	opts.Detect = cache
	opts.FuncHashes = hashes
	opts.Workers = workers
	opts.Obs = prov
	rep, err := atomig.Port(clone, opts)
	if err != nil {
		return nil, nil, err
	}
	return clone, rep, nil
}

// setOptimize records the weakening configuration the session now runs
// under. A changed salt rebuilds the snapshot — new detection-cache
// keys, dropped optimize memo — so nothing computed under the previous
// configuration can be replayed; an unchanged salt is a no-op.
func (s *session) setOptimize(salt string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.optSalt == salt {
		return nil
	}
	s.optSalt = salt
	s.opt = nil
	return s.rebuild()
}

// optKey keys the optimize memo: the active configuration plus the
// snapshot's function hashes (already salted by module header state),
// so an edit or an option flip misses.
func (s *session) optKey() string {
	return s.optSalt + "\x00" + strings.Join(s.hashes, "\x00")
}

// optimize ports the session (cached) and runs the weakening optimizer
// on the ported clone. The result is memoized per (configuration,
// snapshot) — a repeat request with the same options on an unedited
// module replays it (replayed=true) without re-running the checker.
// wopts carries the request's weakening options; Workers/Context/Obs
// are overridden with the server's.
func (s *session) optimize(ctx context.Context, workers int, prov *obs.Provider, wopts weaken.Options) (res *weaken.Result, rep *atomig.Report, text string, replayed bool, err error) {
	if err := s.setOptimize(wopts.Salt()); err != nil {
		return nil, nil, "", false, err
	}
	s.mu.RLock()
	key := s.optKey()
	if m := s.opt; m != nil && m.key == key {
		s.mu.RUnlock()
		return m.res, m.rep, m.text, true, nil
	}
	s.mu.RUnlock()

	ported, rep, err := s.port(ctx, workers, prov)
	if err != nil {
		return nil, nil, "", false, err
	}
	wopts.Workers = workers
	wopts.Context = ctx
	wopts.Obs = prov
	res, err = weaken.Optimize(ported, wopts)
	if err != nil {
		return nil, nil, "", false, err
	}
	text = ported.String()

	// Publish the memo only if the session state it was computed from
	// is still current (an edit or option flip racing this request
	// invalidates it — serve the response, drop the memo).
	s.mu.Lock()
	if s.optKey() == key {
		s.opt = &optMemo{key: key, res: res, rep: rep, text: text}
	}
	s.mu.Unlock()
	return res, rep, text, false, nil
}

// dumpBase renders the un-ported module (the CLI-equivalence input).
func (s *session) dumpBase() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base.String()
}

// cloneBase returns a private copy of the un-ported module for
// read-only analyses that execute it (race sweeps).
func (s *session) cloneBase() (*ir.Module, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ir.CloneModule(s.base)
}

// poison evicts every cached detection verdict. Called after a
// contained panic anywhere in a request touching this session: a
// panicking worker may have published a summary computed from
// corrupted state, and correctness must never depend on cache contents.
func (s *session) poison() {
	s.cache.Clear()
	s.mu.Lock()
	s.opt = nil
	s.mu.Unlock()
}

// readSource resolves a load request's source text: inline Source
// wins, else Path is read from disk.
func readSource(req *Request) (string, error) {
	if req.Source != "" {
		return req.Source, nil
	}
	if req.Path == "" {
		return "", fmt.Errorf("load needs source or path")
	}
	b, err := os.ReadFile(req.Path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
