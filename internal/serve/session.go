// Session state: each named session owns one module and its
// incremental-analysis companion state. The base module is the
// un-ported truth (what dump renders and edits mutate); the analyzed
// snapshot is a pre-inlined clone whose function-body hashes key the
// detection cache. Ports clone the snapshot and run the pipeline with
// inlining off, which performs the exact mutation sequence the CLI's
// inline-then-analyze port performs — so daemon output is byte-
// identical to `atomig -j 1` on the dumped module (the conformance
// contract, tested in serve_test.go).
package serve

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
)

// session is one named module plus its incremental state.
type session struct {
	name string

	// mu orders mutations (load, edit — exclusive) against queries
	// (port, dump, explain, verify — shared; they clone under the read
	// lock and release it before the expensive work).
	mu sync.RWMutex

	base   *ir.Module // un-ported truth
	snap   *ir.Module // analyzed snapshot: clone(base) + inline
	hashes []string   // FuncKey per snap.Funcs, under salt
	salt   string
	cache  *atomig.MemCache
}

// portOptions returns the pipeline options every port of this session
// runs with. Inline is off because the snapshot is already inlined;
// everything else matches atomig.DefaultOptions, the CLI default.
func portOptions() atomig.Options {
	opts := atomig.DefaultOptions()
	opts.Inline = false
	return opts
}

// newSession compiles source (MiniC or AIR, by lang) and builds the
// analyzed snapshot.
func newSession(name, source, lang string) (*session, error) {
	var m *ir.Module
	switch lang {
	case "air":
		pm, err := ir.ParseModule(source)
		if err != nil {
			return nil, err
		}
		m = pm
	case "c":
		res, err := minic.Compile(name, source)
		if err != nil {
			return nil, err
		}
		m = res.Module
	default:
		return nil, fmt.Errorf("unknown lang %q (want c or air)", lang)
	}
	s := &session{name: name, base: m, cache: atomig.NewMemCache()}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// langOf resolves the source language from an explicit lang field or
// the load name's suffix.
func langOf(lang, name string) string {
	if lang != "" {
		return lang
	}
	if strings.HasSuffix(name, ".air") {
		return "air"
	}
	return "c"
}

// rebuild recomputes the analyzed snapshot and its function hashes
// from base. Called under the write lock (or before publication).
func (s *session) rebuild() error {
	snap, err := ir.CloneModule(s.base)
	if err != nil {
		return err
	}
	popts := portOptions()
	analysis.Inline(snap, atomig.DefaultOptions().InlineOptions)
	s.snap = snap
	s.salt = atomig.CacheSalt(snap, popts)
	s.hashes = make([]string, len(snap.Funcs))
	for i, f := range snap.Funcs {
		s.hashes[i] = atomig.FuncKey(s.salt, f)
	}
	return nil
}

// edit applies a batch of function-level deltas transactionally: the
// whole batch lands on a clone, is verified, and only then replaces
// the session's module; any failure leaves the session untouched.
// Struct or global changes are not expressible as deltas — reload the
// module instead (docs/SERVE.md).
func (s *session) edit(replace []string, remove []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next, err := ir.CloneModule(s.base)
	if err != nil {
		return err
	}
	header := s.base.HeaderString()
	for i, text := range replace {
		f, err := parseFuncDelta(header, text)
		if err != nil {
			return fmt.Errorf("replace[%d]: %w", i, err)
		}
		if err := next.ReplaceFunc(f); err != nil {
			return fmt.Errorf("replace[%d] @%s: %w", i, f.Name, err)
		}
	}
	for _, name := range remove {
		if !next.RemoveFunc(name) {
			return fmt.Errorf("remove @%s: no such function", name)
		}
	}
	if err := ir.Verify(next); err != nil {
		return fmt.Errorf("delta leaves module invalid: %w", err)
	}
	s.base = next
	return s.rebuild()
}

// parseFuncDelta parses one AIR function definition against the
// session's header (structs and globals) and returns the function.
func parseFuncDelta(header, text string) (*ir.Func, error) {
	m, err := ir.ParseModule(header + "\n" + text)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) != 1 {
		return nil, fmt.Errorf("delta must contain exactly one function definition, got %d", len(m.Funcs))
	}
	return m.Funcs[0], nil
}

// port clones the analyzed snapshot and runs the cached pipeline on
// the clone under ctx. The expensive work happens outside the session
// lock — only the snapshot clone is taken under it, so concurrent
// ports proceed in parallel and edits order cleanly between them.
func (s *session) port(ctx context.Context, workers int, prov *obs.Provider) (*ir.Module, *atomig.Report, error) {
	s.mu.RLock()
	snap := s.snap
	hashes := s.hashes
	cache := s.cache
	clone, err := ir.CloneModule(snap)
	s.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	opts := portOptions()
	opts.Context = ctx
	opts.Detect = cache
	opts.FuncHashes = hashes
	opts.Workers = workers
	opts.Obs = prov
	rep, err := atomig.Port(clone, opts)
	if err != nil {
		return nil, nil, err
	}
	return clone, rep, nil
}

// dumpBase renders the un-ported module (the CLI-equivalence input).
func (s *session) dumpBase() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base.String()
}

// cloneBase returns a private copy of the un-ported module for
// read-only analyses that execute it (race sweeps).
func (s *session) cloneBase() (*ir.Module, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ir.CloneModule(s.base)
}

// poison evicts every cached detection verdict. Called after a
// contained panic anywhere in a request touching this session: a
// panicking worker may have published a summary computed from
// corrupted state, and correctness must never depend on cache contents.
func (s *session) poison() {
	s.cache.Clear()
}

// readSource resolves a load request's source text: inline Source
// wins, else Path is read from disk.
func readSource(req *Request) (string, error) {
	if req.Source != "" {
		return req.Source, nil
	}
	if req.Path == "" {
		return "", fmt.Errorf("load needs source or path")
	}
	b, err := os.ReadFile(req.Path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
