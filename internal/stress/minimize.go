// The finding minimizer: from a production-scale stress finding to a
// litmus-sized program the model checker can confirm exhaustively.
//
// A race report against a 100k-line module is evidence, not a
// deliverable: nobody audits a schedule seed, and the model checker
// cannot exhaustively explore a module that size to rule the report a
// false alarm (the stress engine never produces one, but the claim
// should not rest on trusting the engine). Minimize applies delta
// debugging specialized to the module structure — drop entry threads,
// prune unreachable code, delete calls, shrink loop bounds — with a
// deterministic fixed-budget stress sweep as the reproduction oracle,
// then hands the shrunken program to mc.Check with race detection on.
// The result is a litmus-sized module whose race the checker confirms
// over the full interleaving space: the stress finding, upgraded to a
// proof.
//
// Determinism: every pass visits candidates in module order, the
// oracle's schedule grid is fixed by MinimizeOptions, and nothing
// consults wall clocks or maps without sorting — the same module and
// finding always minimize to the byte-identical program (pinned by
// golden test).
package stress

import (
	"fmt"
	"time"

	"repro/internal/alias"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/race"
)

// MinimizeOptions configures a minimization.
type MinimizeOptions struct {
	// Model is the memory model (default ModelWMM, like the sweep's).
	Model memmodel.Model
	// Entries are the original module's entry threads.
	Entries []string
	// Target is the race to preserve, matched by its symbolic location
	// (Report.Loc): site strings embed instruction indices that shift as
	// code is deleted, but the racy location is invariant under the
	// reductions.
	Target *race.Report
	// Seeds is the oracle budget: schedules per scheduler mode for each
	// reproduction sweep (0 = 16). The oracle is strict — the candidate
	// must re-expose the target race AND stay violation- and
	// livelock-free — so a semantics-breaking reduction (say, shrinking
	// a spin-wait's bound) is rejected even though the race might
	// survive it.
	Seeds int
	// MaxSteps bounds each oracle schedule (0 = the sweep default).
	MaxSteps int64
	// Workers parallelizes the oracle sweeps (the result is
	// worker-count-invariant).
	Workers int
	// Rounds caps the call-deletion fixpoint (0 = 3).
	Rounds int
	// ConfirmExecs and ConfirmBudget bound the final exhaustive
	// confirmation (0 = 200_000 executions / 30s).
	ConfirmExecs  int
	ConfirmBudget time.Duration
	// Obs, when non-nil, records stress.minimize_* counters.
	Obs *obs.Provider
}

// MinimizeResult is a finished minimization.
type MinimizeResult struct {
	// Module is the minimized program (a reduced clone; the input module
	// is never touched).
	Module *ir.Module
	// Entries are the surviving entry threads.
	Entries []string
	// TargetLoc is the preserved race's location.
	TargetLoc alias.Loc
	// Reductions counts accepted reduction steps; Checks counts oracle
	// sweeps (accepted + rejected + the initial and final validations).
	Reductions, Checks int
	// Funcs and Instrs measure the result (litmus-sized: compare
	// OrigFuncs/OrigInstrs).
	Funcs, Instrs         int
	OrigFuncs, OrigInstrs int
	// Schedule is a schedule of the oracle grid that re-exposes the race
	// on the minimized module — the reproduction recipe shipped with the
	// program.
	Schedule Schedule
	// Report is the race as the oracle last observed it on the minimized
	// module (sites refer to the minimized code).
	Report *race.Report
	// Confirm is the exhaustive confirmation: mc.Check over the
	// minimized module with race detection on. A VerdictRace with the
	// target location among Confirm.Races upgrades the stress finding to
	// a model-checked fact; anything else returns an error alongside the
	// result.
	Confirm *mc.Result
}

// minimizer carries one minimization's state.
type minimizer struct {
	opts   MinimizeOptions
	target alias.Loc
	mod    *ir.Module
	ents   []string
	checks int
	steps  int
	// last reproduction evidence (refreshed by every passing oracle run)
	lastSchedule Schedule
	lastReport   *race.Report
}

// Minimize shrinks the module around the target race and confirms the
// result exhaustively. On oracle or confirmation failure the error
// explains which claim broke; the partially minimized result is
// returned alongside the error when minimization itself succeeded.
func Minimize(m *ir.Module, opts MinimizeOptions) (res *MinimizeResult, err error) {
	defer diag.Guard("stress.Minimize", &err)
	if opts.Target == nil {
		return nil, fmt.Errorf("stress: minimize needs a target race report")
	}
	if !opts.Target.Loc.Shared() {
		return nil, fmt.Errorf("stress: target race location %s is not a shared location", opts.Target.Loc)
	}
	if opts.Model == 0 {
		opts.Model = memmodel.ModelWMM
	}
	if opts.Seeds == 0 {
		opts.Seeds = 16
	}
	if opts.Rounds == 0 {
		opts.Rounds = 3
	}
	if opts.ConfirmExecs == 0 {
		opts.ConfirmExecs = 200_000
	}
	if opts.ConfirmBudget == 0 {
		opts.ConfirmBudget = 30 * time.Second
	}

	clone, err := ir.CloneModule(m)
	if err != nil {
		return nil, fmt.Errorf("stress: minimize clone: %w", err)
	}
	clone.Name = m.Name + "-min"
	mz := &minimizer{
		opts:   opts,
		target: opts.Target.Loc,
		mod:    clone,
		ents:   append([]string(nil), opts.Entries...),
	}
	origFuncs, origInstrs := moduleSize(clone)

	sp := opts.Obs.Track("stress").Begin("stress.minimize").
		Arg("module", m.Name).Arg("target", mz.target.String())
	defer sp.End()

	if !mz.reproduces(mz.mod, mz.ents) {
		return nil, fmt.Errorf("stress: target race on %s does not reproduce under the oracle budget (%d seeds/mode); raise MinimizeOptions.Seeds", mz.target, opts.Seeds)
	}

	mz.dropEntries()
	mz.prune()
	for r := 0; r < opts.Rounds; r++ {
		n := mz.deleteCalls()
		n += mz.simplifyBranches()
		n += mz.deleteChunks()
		mz.prune()
		if n == 0 {
			break
		}
	}
	mz.shrinkConsts()
	mz.dropEntries()
	mz.prune()

	// Final validation refreshes the shipped schedule and report.
	if !mz.reproduces(mz.mod, mz.ents) {
		return nil, fmt.Errorf("stress: minimized module lost the race (minimizer bug)")
	}

	funcs, instrs := moduleSize(mz.mod)
	out := &MinimizeResult{
		Module: mz.mod, Entries: mz.ents, TargetLoc: mz.target,
		Reductions: mz.steps, Checks: mz.checks,
		Funcs: funcs, Instrs: instrs, OrigFuncs: origFuncs, OrigInstrs: origInstrs,
		Schedule: mz.lastSchedule, Report: mz.lastReport,
	}
	opts.Obs.Counter("stress.minimize_reductions").Add(int64(mz.steps))
	opts.Obs.Counter("stress.minimize_checks").Add(int64(mz.checks))
	sp.Arg("reductions", mz.steps).Arg("instrs", instrs)

	conf, err := mc.Check(mz.mod, mc.Options{
		Model:         opts.Model,
		Entries:       mz.ents,
		DetectRaces:   true,
		MaxExecutions: opts.ConfirmExecs,
		TimeBudget:    opts.ConfirmBudget,
		Workers:       opts.Workers,
		Obs:           opts.Obs,
	})
	if err != nil {
		return out, fmt.Errorf("stress: exhaustive confirmation: %w", err)
	}
	out.Confirm = conf
	if conf.Verdict != mc.VerdictRace {
		return out, fmt.Errorf("stress: exhaustive confirmation returned %s, want %s (violations: %v)",
			conf.Verdict, mc.VerdictRace, conf.Violations)
	}
	for _, r := range conf.Races {
		if r.Loc == mz.target {
			return out, nil
		}
	}
	return out, fmt.Errorf("stress: checker confirmed races but none on the target location %s", mz.target)
}

// reproduces runs the fixed-budget oracle sweep: the candidate must
// re-expose the target race with zero violations and zero step-limited
// schedules (strictness keeps semantics-breaking reductions out — see
// MinimizeOptions.Seeds).
func (mz *minimizer) reproduces(mod *ir.Module, entries []string) bool {
	mz.checks++
	res, err := Sweep(mod, Options{
		Model:    mz.opts.Model,
		Entries:  entries,
		Seeds:    mz.opts.Seeds,
		MaxSteps: mz.opts.MaxSteps,
		Workers:  mz.opts.Workers,
		Obs:      mz.opts.Obs,
	})
	if err != nil || res.StepLimited > 0 {
		return false
	}
	var hit *Finding
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Kind == FindingViolation {
			return false
		}
		if hit == nil && f.Report.Loc == mz.target {
			hit = f
		}
	}
	if hit == nil {
		return false
	}
	mz.lastSchedule = hit.Schedule
	mz.lastReport = hit.Report
	return true
}

// dropEntries removes entry threads one at a time, keeping at least
// two (a race needs two threads).
func (mz *minimizer) dropEntries() {
	for i := 0; i < len(mz.ents) && len(mz.ents) > 2; {
		cand := make([]string, 0, len(mz.ents)-1)
		cand = append(cand, mz.ents[:i]...)
		cand = append(cand, mz.ents[i+1:]...)
		if mz.reproduces(mz.mod, cand) {
			mz.ents = cand
			mz.steps++
		} else {
			i++
		}
	}
}

// prune rebuilds the module with only the functions reachable from the
// surviving entries and only the globals those functions reference.
// Semantics-preserving by construction; the next oracle run (every
// pass ends in one) backstops the claim.
func (mz *minimizer) prune() {
	keep := reachable(mz.mod, mz.ents)
	used := make(map[*ir.Global]bool)
	for _, f := range mz.mod.Funcs {
		if !keep[f] {
			continue
		}
		f.Instrs(func(in *ir.Instr) {
			for _, a := range in.Args {
				if g, ok := a.(*ir.Global); ok {
					used[g] = true
				}
			}
		})
	}
	out := ir.NewModule(mz.mod.Name)
	for _, st := range mz.mod.Structs {
		_ = out.AddStruct(st)
	}
	for _, g := range mz.mod.Globals {
		if used[g] {
			if err := out.AddGlobal(g); err != nil {
				return // duplicate would be a module bug; keep the old module
			}
		}
	}
	for _, f := range mz.mod.Funcs {
		if keep[f] {
			if err := out.AddFunc(f); err != nil {
				return
			}
		}
	}
	dropped := (len(mz.mod.Funcs) - len(out.Funcs)) + (len(mz.mod.Globals) - len(out.Globals))
	for _, f := range out.Funcs {
		dropped += pruneBlocks(f)
	}
	if dropped > 0 {
		mz.steps += dropped
	}
	mz.mod = out
}

// pruneBlocks drops a function's blocks that are unreachable from its
// entry (the residue of simplifyBranches), returning the count. Kept
// blocks cannot reference dead-block values: definitions dominate uses.
func pruneBlocks(f *ir.Func) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	keep := map[*ir.Block]bool{f.Entry(): true}
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !keep[s] {
				keep[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if keep[b] {
			kept = append(kept, b)
		}
	}
	dropped := len(f.Blocks) - len(kept)
	f.Blocks = kept
	return dropped
}

// simplifyBranches rewrites conditional branches to unconditional ones
// where the oracle allows it — the pass that collapses inlined spin
// loops (branch straight to the exit: the loop body becomes dead) after
// the port pipeline has inlined every helper into the entries.
func (mz *minimizer) simplifyBranches() int {
	accepted := 0
	for _, f := range mz.mod.Funcs {
		for _, b := range f.Blocks {
			in := b.Terminator()
			if in == nil || in.Op != ir.OpBr || in.Else == nil {
				continue
			}
			savedArgs, savedThen, savedElse := in.Args, in.Then, in.Else
			// Else first: in the frontend's loop lowering Else is the
			// exit, so this skips the loop outright.
			for _, target := range []*ir.Block{savedElse, savedThen} {
				in.Args, in.Then, in.Else = nil, target, nil
				if mz.reproduces(mz.mod, mz.ents) {
					accepted++
					mz.steps++
					break
				}
				in.Args, in.Then, in.Else = savedArgs, savedThen, savedElse
			}
		}
	}
	return accepted
}

// deleteChunks is ddmin-style straightline deletion: per block, try to
// delete the whole non-terminator body in one oracle check, splitting
// on failure down to single instructions. Filler code vanishes in a
// handful of checks instead of one check per instruction.
func (mz *minimizer) deleteChunks() int {
	accepted := 0
	for _, f := range mz.mod.Funcs {
		for _, b := range f.Blocks {
			end := len(b.Instrs)
			if end > 0 && b.Instrs[end-1].IsTerminator() {
				end--
			}
			accepted += mz.reduceRange(f, b, 0, end)
		}
	}
	return accepted
}

// reduceRange deletes as much of b.Instrs[lo:hi) as the oracle allows,
// whole range first, then by bisection. The right half reduces first so
// the left half's indices stay valid.
func (mz *minimizer) reduceRange(f *ir.Func, b *ir.Block, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	if mz.tryDeleteRange(f, b, lo, hi) {
		return hi - lo
	}
	if hi-lo == 1 {
		return 0
	}
	mid := (lo + hi) / 2
	n := mz.reduceRange(f, b, mid, hi)
	return n + mz.reduceRange(f, b, lo, mid)
}

// tryDeleteRange attempts to delete b.Instrs[lo:hi), replacing
// references from surviving instructions to deleted integer results
// with the constant 0. Ranges whose non-integer results (pointers) leak
// out are not deletable as-is; the bisection isolates them.
func (mz *minimizer) tryDeleteRange(f *ir.Func, b *ir.Block, lo, hi int) bool {
	removed := append([]*ir.Instr(nil), b.Instrs[lo:hi]...)
	inRange := make(map[*ir.Instr]bool, len(removed))
	for _, in := range removed {
		inRange[in] = true
	}
	type rangeUse struct {
		in   *ir.Instr
		idx  int
		orig ir.Value
	}
	var uses []rangeUse
	ok := true
	f.Instrs(func(in *ir.Instr) {
		if inRange[in] {
			return
		}
		for i, a := range in.Args {
			ref, isInstr := a.(*ir.Instr)
			if !isInstr || !inRange[ref] {
				continue
			}
			if _, isInt := ref.Ty.(*ir.IntType); !isInt {
				ok = false
				return
			}
			uses = append(uses, rangeUse{in, i, a})
		}
	})
	if !ok {
		return false
	}
	for _, u := range uses {
		ref := u.orig.(*ir.Instr)
		u.in.Args[u.idx] = ir.ConstOf(ref.Ty.(*ir.IntType), 0)
	}
	b.Instrs = append(b.Instrs[:lo], b.Instrs[hi:]...)
	if mz.reproduces(mz.mod, mz.ents) {
		mz.steps += len(removed)
		return true
	}
	// revert: reinsert the range at lo and restore the use sites
	tail := append([]*ir.Instr(nil), b.Instrs[lo:]...)
	b.Instrs = append(b.Instrs[:lo], removed...)
	b.Instrs = append(b.Instrs, tail...)
	for _, u := range uses {
		u.in.Args[u.idx] = u.orig
	}
	return false
}

// deleteCalls tries to delete each call instruction (replacing a used
// result with the constant 0), accepting deletions the oracle upholds.
// Returns the number of accepted deletions.
func (mz *minimizer) deleteCalls() int {
	accepted := 0
	for _, f := range mz.mod.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); {
				in := b.Instrs[i]
				if in.Op != ir.OpCall {
					i++
					continue
				}
				uses := usesOf(f, in)
				ty, isInt := in.Ty.(*ir.IntType)
				if len(uses) > 0 && !isInt {
					i++ // result used and not replaceable by an int constant
					continue
				}
				zero := ir.Value(nil)
				if len(uses) > 0 {
					zero = ir.ConstOf(ty, 0)
				}
				for _, u := range uses {
					u.in.Args[u.idx] = zero
				}
				b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
				if mz.reproduces(mz.mod, mz.ents) {
					accepted++
					mz.steps++
					continue // same index now holds the next instruction
				}
				// revert
				b.Instrs = append(b.Instrs, nil)
				copy(b.Instrs[i+1:], b.Instrs[i:])
				b.Instrs[i] = in
				for _, u := range uses {
					u.in.Args[u.idx] = in
				}
				i++
			}
		}
	}
	return accepted
}

// use is one (instruction, argument-index) reference to a value.
type use struct {
	in  *ir.Instr
	idx int
}

// usesOf lists the in-function references to a call's result.
func usesOf(f *ir.Func, v *ir.Instr) []use {
	var out []use
	f.Instrs(func(in *ir.Instr) {
		for i, a := range in.Args {
			if a == ir.Value(v) {
				out = append(out, use{in, i})
			}
		}
	})
	return out
}

// shrinkConsts halves integer-compare constants toward 1: loop trip
// counts and iteration bounds collapse while spin-wait sentinels (whose
// shrinking breaks the protocol) are rejected by the oracle.
func (mz *minimizer) shrinkConsts() {
	for _, f := range mz.mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpICmp {
					continue
				}
				for ai, a := range in.Args {
					c, ok := a.(*ir.ConstInt)
					if !ok {
						continue
					}
					for c.V > 1 {
						cand := ir.ConstOf(c.Ty, c.V/2)
						in.Args[ai] = cand
						if !mz.reproduces(mz.mod, mz.ents) {
							in.Args[ai] = c
							break
						}
						c = cand
						mz.steps++
					}
				}
			}
		}
	}
}

// reachable returns the functions reachable from the entries through
// calls and function references.
func reachable(m *ir.Module, entries []string) map[*ir.Func]bool {
	in := make(map[*ir.Func]bool, len(entries))
	var stack []*ir.Func
	push := func(f *ir.Func) {
		if f != nil && !in[f] {
			in[f] = true
			stack = append(stack, f)
		}
	}
	for _, e := range entries {
		push(m.Func(e))
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f.Instrs(func(instr *ir.Instr) {
			if instr.Op == ir.OpCall {
				push(m.Func(instr.Callee))
			}
			for _, a := range instr.Args {
				if fr, ok := a.(*ir.FuncRef); ok {
					push(fr.Fn)
				}
			}
		})
	}
	return in
}

// moduleSize measures a module for the minimization report.
func moduleSize(m *ir.Module) (funcs, instrs int) {
	funcs = len(m.Funcs)
	for _, f := range m.Funcs {
		instrs += f.NumInstrs()
	}
	return
}
