package stress

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/minic"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// findGapTarget sweeps the module and returns the planted race's
// finding.
func findGapTarget(t *testing.T, m *ir.Module, entries []string) Finding {
	t.Helper()
	res, err := Sweep(m, Options{Entries: entries, Seeds: 16, Workers: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range res.Findings {
		if f.Kind == FindingRace && f.Report.Loc == gapLoc {
			return f
		}
	}
	t.Fatal("planted race not found")
	return Finding{}
}

// TestMinimizePlantedRace: the full finding-to-fact path. The stress
// finding against the production-scale harness minimizes to a
// litmus-sized program that still exhibits exactly the target race,
// and the model checker confirms it exhaustively.
func TestMinimizePlantedRace(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	target := findGapTarget(t, m, entries)
	res, err := Minimize(m, MinimizeOptions{
		Entries: entries, Target: target.Report, Workers: 4,
	})
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if res.Instrs*4 > res.OrigInstrs {
		t.Errorf("weak reduction: %d of %d instructions survive", res.Instrs, res.OrigInstrs)
	}
	if res.Confirm == nil || res.Confirm.Verdict != mc.VerdictRace {
		t.Fatalf("no exhaustive confirmation: %+v", res.Confirm)
	}
	confirmed := false
	for _, r := range res.Confirm.Races {
		if r.Loc == gapLoc {
			confirmed = true
		}
	}
	if !confirmed {
		t.Fatalf("checker races do not include %s", gapLoc)
	}
	if res.Report == nil || res.Report.Loc != gapLoc {
		t.Fatal("result lost the reproduction report")
	}

	// Replaying the shipped schedule on the minimized module re-exposes
	// the race: the reproduction recipe is complete.
	_, det, err := Replay(res.Module, Options{
		Entries: res.Entries, Seeds: 16, Workers: 4,
	}, res.Schedule, false)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	replayed := false
	for _, r := range det.Reports() {
		if r.Loc == gapLoc {
			replayed = true
		}
	}
	if !replayed {
		t.Fatalf("shipped schedule %s does not reproduce on the minimized module", res.Schedule)
	}
}

// TestMinimizeDeterministic pins the minimizer's output: the same
// module and target always reduce to the byte-identical program
// (golden file; regenerate with -update).
func TestMinimizeDeterministic(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	target := findGapTarget(t, m, entries)
	var first string
	for run := 0; run < 2; run++ {
		// Re-port a fresh module each run: minimization must not depend
		// on leftover state from a prior run's reductions.
		m, entries := portedHarness(t, harnessSpec())
		res, err := Minimize(m, MinimizeOptions{
			Entries: entries, Target: target.Report, Workers: run*3 + 1,
		})
		if err != nil {
			t.Fatalf("minimize (run %d): %v", run, err)
		}
		got := res.Module.String()
		if run == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("minimizer output differs across runs/workers:\n--- run 0\n%s\n--- run %d\n%s", first, run, got)
		}
	}

	path := filepath.Join("testdata", "minimize_gap.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != first {
		t.Fatalf("minimized module drifted from golden %s:\n%s", path, first)
	}
}

// FuzzMinimize drives the whole loop — generate, port, stress, minimize,
// confirm — over fuzzed generator shapes. Wired into `make fuzz-smoke`.
func FuzzMinimize(f *testing.F) {
	f.Add(int64(42), uint8(2), uint8(1))
	f.Add(int64(7), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, spins, seqlocks uint8) {
		spec := appgen.ModuleSpec{
			Name: "fuzz-min", Seed: seed,
			SpinSites: int(spins % 4), SeqlockSites: int(seqlocks % 3),
			DataGlobals: 2, FillerFuncs: 1,
			PlantRace: true, HarnessThreads: 3,
		}
		src, _ := appgen.GenerateLarge(spec)
		cres, err := minic.Compile("fuzz-min.c", src)
		if err != nil {
			t.Fatalf("generated source does not compile: %v", err)
		}
		if _, err := atomig.Port(cres.Module, atomig.DefaultOptions()); err != nil {
			t.Fatalf("port: %v", err)
		}
		entries := spec.HarnessEntries()
		sres, err := Sweep(cres.Module, Options{Entries: entries, Seeds: 8, Workers: 2})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		var target *Finding
		for i := range sres.Findings {
			if sres.Findings[i].Kind == FindingRace && sres.Findings[i].Report.Loc == gapLoc {
				target = &sres.Findings[i]
				break
			}
		}
		if target == nil {
			// The planted window can stay closed under a small budget;
			// that is a detection-rate property, not a soundness bug.
			t.Skip("planted race not exposed under the fuzz budget")
		}
		// Tight confirmation budget: VerdictRace needs only the race to
		// surface in the explored prefix, not full exploration.
		mres, err := Minimize(cres.Module, MinimizeOptions{
			Entries: entries, Target: target.Report, Seeds: 8, Workers: 2,
			Rounds: 1, ConfirmExecs: 20_000, ConfirmBudget: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("minimize: %v", err)
		}
		if mres.Instrs > mres.OrigInstrs {
			t.Fatalf("minimizer grew the module: %d -> %d instrs", mres.OrigInstrs, mres.Instrs)
		}
	})
}
