package stress

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
)

// The negative-control suite: stress's value depends as much on NOT
// reporting races as on finding them. A stress finding is a real
// execution, so a correctly ported, mc-verified-race-free program must
// sweep clean under every scheduler mode and seed — any report here is
// a detector or engine false positive, the one failure class the
// contract rules out (docs/STRESS.md).

// portedCorpus compiles and ports one corpus program.
func portedCorpus(t *testing.T, name string) (*ir.Module, []string) {
	t.Helper()
	p := corpus.Get(name)
	if p == nil {
		t.Fatalf("program %q not in corpus", name)
	}
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if _, err := atomig.Port(m, atomig.DefaultOptions()); err != nil {
		t.Fatalf("%s: port: %v", name, err)
	}
	return m, p.MCEntries
}

// negativeSweep runs the control sweep: all scheduler modes at 200
// seeds each (>= 1000 schedules total).
func negativeSweep(t *testing.T, m *ir.Module, entries []string) *Result {
	t.Helper()
	res, err := Sweep(m, Options{Entries: entries, Seeds: 200, Workers: 8})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Schedules < 1000 {
		t.Fatalf("only %d schedules; the control needs >= 1000", res.Schedules)
	}
	return res
}

// TestNegativeControlCorpus sweeps every ported corpus program the
// checker verifies race-free and requires a completely clean result:
// zero races, zero violations, across all modes and >= 1000 seeded
// schedules each.
func TestNegativeControlCorpus(t *testing.T) {
	// Ported and mc-verified race-free: the conformance and weakening
	// suites (TestLitmusConformance, BENCH_weaken.json) establish the
	// exhaustive verdicts these controls are negative against.
	controls := []string{
		"mp", "seqlock-gap", "cna-lock", "tas", "dcl-spin",
		"ck_spinlock_ticket", "ck_spinlock_mcs", "ck_spinlock_cas",
	}
	for _, name := range controls {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, entries := portedCorpus(t, name)
			res := negativeSweep(t, m, entries)
			if v := res.Violations(); len(v) > 0 {
				t.Errorf("%d violations on a verified port:\n%s", len(v), v[0])
			}
			for _, r := range res.Races() {
				t.Errorf("false positive on a race-free port: %s", r.Key())
			}
		})
	}
}

// TestNegativeControlBenign covers the ported programs whose only
// races are the benign optimistic-read retries the paper's port
// intentionally leaves plain: every reported race must sit on the
// known optimistic data location, and there must be no violations.
func TestNegativeControlBenign(t *testing.T) {
	g := func(name string) alias.Loc { return alias.Loc{Kind: alias.LocGlobal, Name: name} }
	cases := []struct {
		program string
		allowed []alias.Loc
	}{
		{"seqlock", []alias.Loc{g("msg")}},
		{"ck_sequence", []alias.Loc{g("d0"), g("d1")}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.program, func(t *testing.T) {
			t.Parallel()
			m, entries := portedCorpus(t, c.program)
			res := negativeSweep(t, m, entries)
			if v := res.Violations(); len(v) > 0 {
				t.Errorf("%d violations on a verified port:\n%s", len(v), v[0])
			}
			for _, r := range res.Races() {
				ok := false
				for _, a := range c.allowed {
					if r.Loc == a {
						ok = true
					}
				}
				if !ok {
					t.Errorf("race outside the benign optimistic set %v: %s", c.allowed, r.Key())
				}
			}
		})
	}
}

// TestStressKeysSubsetOfExhaustive pins the no-false-positives claim
// against the ground truth directly: on the plain litmus programs at
// the port's documented detection boundary (lb, corr — no
// synchronization pattern, races survive porting), every race key a
// stress sweep reports must appear in the exhaustive checker's
// race-detection report for the same module.
func TestStressKeysSubsetOfExhaustive(t *testing.T) {
	for _, name := range []string{"lb", "corr"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, entries := portedCorpus(t, name)
			mres, err := mc.Check(m, mc.Options{
				Model: memmodel.ModelWMM, Entries: entries, DetectRaces: true,
			})
			if err != nil {
				t.Fatalf("mc: %v", err)
			}
			exact := make(map[string]bool, len(mres.Races))
			for _, r := range mres.Races {
				exact[r.Key()] = true
			}
			if len(exact) == 0 {
				t.Fatalf("exhaustive check found no races; the boundary program should keep them")
			}
			res := negativeSweep(t, m, entries)
			if len(res.Races()) == 0 {
				t.Fatalf("stress found none of the %d exhaustive races", len(exact))
			}
			for _, r := range res.Races() {
				if !exact[r.Key()] {
					t.Errorf("stress race %s not in the exhaustive set (false positive)", r.Key())
				}
			}
		})
	}
}
