// The location sampler: the stress engine's answer to detector
// overhead on production-scale modules.
//
// Attaching the full happens-before detector to every access of a
// 100k-line module costs more than the execution itself. The sampler
// sits between the VM's hook seam and the detector and forwards only a
// configurable fraction of *plain, effectively-relaxed* locations —
// with a soundness boundary chosen so sampling can only lose findings,
// never invent them:
//
//   - Every synchronization-relevant event is always forwarded: atomic
//     accesses, plain accesses whose model-effective ordering acquires
//     or releases (under TSO/SC plain accesses carry implicit sync;
//     under WMM they do not), all fences, spawns, joins and barriers.
//     The detector's happens-before graph is therefore always complete:
//     an edge it would have built at Sample = 1 is never missing, so a
//     pair it reports as unordered really is unordered — no false
//     positives.
//   - Plain relaxed locations are sampled all-or-nothing: either every
//     access to a location is forwarded or none is. Skipping half a
//     location's accesses could report a race whose other half was a
//     synchronizing accident the detector never saw; skipping whole
//     locations only hides races on the skipped locations — false
//     negatives, the accepted currency of stress testing.
//
// The per-location decision hashes the address against a per-schedule
// salt, so different schedules observe different location subsets and a
// long sweep's aggregate coverage approaches 1 even at small fractions
// (docs/STRESS.md quantifies the detection-rate trade on the planted
// corpus).
package stress

import (
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/race"
	"repro/internal/vm"
)

// sampler forwards a sampled subset of events to the wrapped detector.
type sampler struct {
	det       *race.Detector
	model     memmodel.Model
	threshold uint64 // forward plain location iff mix(addr^salt) < threshold
	salt      uint64
	all       bool // Sample == 1: no per-access hashing at all
	forwarded int64
	skipped   int64
}

// newSampler wraps det, forwarding the given fraction of plain
// locations (all synchronization-relevant events always pass through).
func newSampler(det *race.Detector, model memmodel.Model, fraction float64) *sampler {
	s := &sampler{det: det, model: model}
	if fraction <= 0 || fraction >= 1 {
		s.all = true
		return s
	}
	s.threshold = uint64(fraction * float64(1<<63) * 2)
	return s
}

// begin resets the per-schedule salt; call before each execution.
func (s *sampler) begin(salt uint64) { s.salt = salt }

// observes decides the location's fate for this schedule:
// all-or-nothing per address.
func (s *sampler) observes(a memmodel.Addr) bool {
	return mix(uint64(a)^s.salt) < s.threshold
}

// syncRelevant reports whether the event can create or require a
// happens-before edge under the model — such events must always reach
// the detector (see the package comment's soundness boundary).
func (s *sampler) syncRelevant(ev vm.AccessEvent) bool {
	if ev.Ord.Atomic() {
		return true
	}
	switch ev.Kind {
	case vm.AccessLoad:
		return memmodel.EffectiveOrd(s.model, int(ev.Ord), false).Acquires()
	case vm.AccessStore:
		return memmodel.EffectiveOrd(s.model, int(ev.Ord), true).Releases()
	default:
		// RMW / CAS-fail: intrinsically atomic.
		return true
	}
}

// OnAccess implements vm.Hook.
func (s *sampler) OnAccess(ev vm.AccessEvent) {
	if !s.all && !s.syncRelevant(ev) && !s.observes(ev.Addr) {
		s.skipped++
		return
	}
	s.forwarded++
	s.det.OnAccess(ev)
}

// OnFence implements vm.Hook.
func (s *sampler) OnFence(thread int, ord ir.MemOrder) { s.det.OnFence(thread, ord) }

// OnSpawn implements vm.Hook.
func (s *sampler) OnSpawn(parent, child int) { s.det.OnSpawn(parent, child) }

// OnJoin implements vm.Hook.
func (s *sampler) OnJoin(t, joined int) { s.det.OnJoin(t, joined) }

// OnBarrier implements vm.Hook.
func (s *sampler) OnBarrier(participants []int) { s.det.OnBarrier(participants) }

// mix is the splitmix64 finalizer (the same mixer vm.GridSeed uses),
// applied to addresses and salts for the per-location sampling draw.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
