// Package stress is the schedule-fuzzing stress mode: production-scale
// race testing beyond the model checker's exhaustive reach (in the
// spirit of C11Tester's controlled-random testing over a weak-memory
// execution engine).
//
// Where internal/mc enumerates every interleaving of a litmus-sized
// program, stress runs plain executions — no state-space exploration,
// no choice-trace bookkeeping — of arbitrarily large modules under a
// grid of seeded adversarial schedules (the vm scheduler modes), with
// the happens-before detector attached behind a per-location sampler
// that bounds its per-step overhead. Each worker owns one pooled VM
// (recycled through vm.Reset between schedules, the model checker's
// own allocation-free replay seam), so a 100k-line module sweeps at
// thousands of schedules per second.
//
// The contract is asymmetric, and docs/STRESS.md spells it out:
// a stress finding is a real execution, so every reported race or
// violation is true (no false positives — the sampler only ever skips
// whole plain locations, never half of one); a clean sweep is evidence,
// not proof. Findings are minimized (Minimize) into litmus-sized
// programs the model checker then confirms exhaustively, and the
// engine doubles as the weakening optimizer's screening oracle
// (weaken.Options.Oracle).
//
// Determinism: the schedule of grid cell i is a pure function of
// (BaseSeed, mode, ordinal) via vm.GridSeed — never of the worker that
// claims the cell — and findings are assembled in grid order with
// earliest-cell attribution, so the result is byte-identical for every
// Workers value and every run.
package stress

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/vm"
)

// Options configures a stress sweep.
type Options struct {
	// Model is the memory model executions run under (default ModelWMM:
	// stress hunts the weak behaviors TSO code misses).
	Model memmodel.Model
	// Entries are the functions started as initial threads; required.
	Entries []string
	// Modes are the scheduler modes to sweep; nil selects all of them.
	Modes []vm.SchedMode
	// Seeds is the number of schedules per mode (0 = 256).
	Seeds int
	// BaseSeed anchors the schedule derivation: cell (mode, s) runs
	// under vm.GridSeed(BaseSeed, mode, s+1). Two sweeps with the same
	// BaseSeed replay the same schedules; 0 selects 1.
	BaseSeed int64
	// Sample is the fraction of plain (non-synchronizing) locations the
	// race detector observes, 0 < Sample <= 1; 0 selects 1 (observe
	// everything). Synchronization-relevant accesses are always
	// forwarded regardless — see sampler.go for the soundness boundary.
	Sample float64
	// MaxSteps bounds each schedule's instruction count (0 = 200_000).
	MaxSteps int64
	// Workers fans the schedule grid out across that many goroutines,
	// each owning one pooled VM and a private detector (0 or 1 =
	// sequential). The result is identical for every value.
	Workers int
	// MaxReports caps the distinct races retained (0 = 32).
	MaxReports int
	// StopWhen, when non-nil, stops the sweep early once a finding
	// satisfies the predicate (the minimizer's reproduction oracle stops
	// on its target race). Whether the grid contains a satisfying
	// finding is deterministic; the Schedules count of a stopped sweep
	// is not (in-flight workers finish their cells).
	StopWhen func(Finding) bool
	// Context, when non-nil, cancels the sweep between schedules.
	Context context.Context
	// Obs, when non-nil, records the stress.* counters and spans
	// (docs/OBSERVABILITY.md).
	Obs *obs.Provider
}

// Schedule identifies one seeded schedule of the grid: everything
// needed to replay it exactly.
type Schedule struct {
	// Mode is the scheduler mode.
	Mode vm.SchedMode `json:"mode"`
	// Ordinal is the 1-based seed ordinal within the mode.
	Ordinal int `json:"ordinal"`
	// Seed is the derived scheduler seed (vm.GridSeed of the sweep's
	// BaseSeed, Mode and Ordinal) — vm.NewScheduler(Mode, Seed) replays
	// the schedule.
	Seed int64 `json:"seed"`
	// Cell is the grid index the schedule occupied in its sweep.
	Cell int `json:"cell"`
}

func (s Schedule) String() string {
	return fmt.Sprintf("%s#%d (seed %d)", s.Mode, s.Ordinal, s.Seed)
}

// FindingKind classifies a finding.
type FindingKind int

// Finding kinds.
const (
	// FindingRace is a data race witnessed by the happens-before
	// detector.
	FindingRace FindingKind = iota
	// FindingViolation is an outright execution failure: assertion
	// violation or deadlock.
	FindingViolation
)

func (k FindingKind) String() string {
	if k == FindingViolation {
		return "violation"
	}
	return "race"
}

// Finding is one stress discovery with its schedule provenance: the
// seed that exposed it replays it.
type Finding struct {
	Kind     FindingKind
	Schedule Schedule
	// Report is the race (FindingRace); nil for violations.
	Report *race.Report
	// Msg is the failure message (FindingViolation).
	Msg string
}

func (f Finding) String() string {
	if f.Kind == FindingViolation {
		return fmt.Sprintf("violation under %s: %s", f.Schedule, f.Msg)
	}
	return fmt.Sprintf("race under %s: %s", f.Schedule, f.Report.Key())
}

// Result reports a stress sweep.
type Result struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Steps is the total instruction count across all schedules.
	Steps int64
	// Findings lists every distinct discovery in grid order. A race is
	// attributed to the earliest grid cell that exposed it (the
	// attribution is worker-count-invariant).
	Findings []Finding
	// Detector holds the merged distinct race reports.
	Detector *race.Detector
	// StepLimited counts schedules cut short by the step budget —
	// possible livelocks, not findings.
	StepLimited int
	// Forwarded and Skipped count detector-visible vs sampled-out
	// accesses (Skipped is 0 at Sample = 1).
	Forwarded, Skipped int64
	// VMResets and VMAllocs count pooled-VM recycling vs fresh builds.
	VMResets, VMAllocs int64
	// Stopped reports an early exit (StopWhen hit or context canceled).
	Stopped bool
	// Elapsed is the sweep wall clock.
	Elapsed time.Duration
}

// Races returns the distinct races found.
func (r *Result) Races() []*race.Report { return r.Detector.Reports() }

// Violations returns the violation findings' messages, in grid order.
func (r *Result) Violations() []string {
	var out []string
	for _, f := range r.Findings {
		if f.Kind == FindingViolation {
			out = append(out, fmt.Sprintf("%s: %s", f.Schedule, f.Msg))
		}
	}
	return out
}

// resolve applies the option defaults.
func (o *Options) resolve() {
	if o.Model == 0 {
		o.Model = memmodel.ModelWMM
	}
	if o.Modes == nil {
		o.Modes = vm.AllSchedModes()
	}
	if o.Seeds == 0 {
		o.Seeds = 256
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Sample <= 0 || o.Sample > 1 {
		o.Sample = 1
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MaxReports == 0 {
		o.MaxReports = 32
	}
}

// cell is one schedule's recorded outcome, written only by the worker
// that claimed it.
type cell struct {
	ran        bool
	steps      int64
	stepLimit  bool
	violation  string // empty when the execution passed
	newReports []*race.Report
	err        error
}

// Sweep runs the schedule grid over the module's entry threads.
// Execution failures and races are findings, not errors; the error
// return is reserved for engine failures, with the earliest grid cell's
// error winning (what a sequential sweep would have reported).
func Sweep(m *ir.Module, opts Options) (res *Result, err error) {
	defer diag.Guard("stress.Sweep", &err)
	if len(opts.Entries) == 0 {
		return nil, fmt.Errorf("stress: no entry functions")
	}
	opts.resolve()
	start := time.Now()

	cells := make([]cell, len(opts.Modes)*opts.Seeds)
	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}

	cSched := opts.Obs.Counter("stress.schedules_run")
	cForwarded := opts.Obs.Counter("stress.accesses_forwarded")
	cSkipped := opts.Obs.Counter("stress.accesses_skipped")
	hSteps := opts.Obs.Histogram("stress.schedule_steps")
	sp := opts.Obs.Track("stress").Begin("stress.sweep").
		Arg("module", m.Name).Arg("cells", len(cells)).
		Arg("sample", fmt.Sprintf("%g", opts.Sample)).Arg("workers", workers)
	defer sp.End()

	out := &Result{}
	// stopAt is the lowest grid cell whose finding satisfied StopWhen
	// (or -1 on context cancel); workers stop claiming cells past it.
	stopAt := int64(len(cells))
	var next atomic.Int64
	var stop atomic.Int64
	stop.Store(stopAt)
	var resets, allocs atomic.Int64
	dets := make([]*race.Detector, workers)
	smps := make([]*sampler, workers)

	worker := func(w int) {
		// 4x headroom over the resolved cap so a single saturated worker
		// does not make the merged (sorted, capped) set depend on how
		// the grid was partitioned.
		det := race.New(opts.Model, race.Options{MaxReports: 4 * opts.MaxReports, Obs: opts.Obs})
		dets[w] = det
		smp := newSampler(det, opts.Model, opts.Sample)
		smps[w] = smp
		ctl := &reseed{}
		var v *vm.VM
		runCell := func(i int) {
			defer func() {
				if r := recover(); r != nil {
					cells[i].err = &diag.InternalError{
						Stage: "stress.Sweep", Value: r, Stack: string(debug.Stack()),
					}
				}
			}()
			sc := scheduleOf(opts, i)
			ctl.inner = vm.NewScheduler(sc.Mode, sc.Seed)
			smp.begin(mix(uint64(sc.Seed)))
			det.BeginExec()
			var err error
			if v == nil {
				v, err = vm.New(m, vm.Options{
					Model:      opts.Model,
					Entries:    opts.Entries,
					Controller: ctl,
					MaxSteps:   opts.MaxSteps,
					Costs:      vm.DefaultCosts(),
					Hook:       smp,
				})
				allocs.Add(1)
			} else {
				err = v.Reset()
				resets.Add(1)
			}
			if err != nil {
				cells[i].err = fmt.Errorf("stress (%s): %w", sc, err)
				return
			}
			res, err := v.Run()
			if err != nil {
				cells[i].err = fmt.Errorf("stress (%s): %w", sc, err)
				return
			}
			c := &cells[i]
			c.ran = true
			c.steps = res.Steps
			cSched.Inc()
			hSteps.Observe(res.Steps)
			switch res.Status {
			case vm.StatusAssertFailed, vm.StatusDeadlock:
				c.violation = fmt.Sprintf("%s: %s", res.Status, res.FailMsg)
			case vm.StatusStepLimit:
				c.stepLimit = true
			}
			c.newReports = append([]*race.Report(nil), det.ExecNewReports()...)
			if opts.StopWhen != nil && cellStops(opts, sc, c) {
				// Lower the stop watermark to this cell (keep the minimum).
				for {
					cur := stop.Load()
					if cur <= int64(i) || stop.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}
		for {
			if opts.Context != nil && opts.Context.Err() != nil {
				stop.Store(-1)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(cells) || int64(i) > stop.Load() {
				return
			}
			runCell(i)
		}
	}

	if workers <= 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) { defer wg.Done(); worker(w) }(w)
		}
		wg.Wait()
	}

	// Merge: distinct races by canonical key, findings in grid order
	// with earliest-cell attribution. The earliest grid cell exposing a
	// race always records it (no earlier cell of its worker could have
	// deduplicated it away) and its recorded report depends only on that
	// cell's deterministic execution, so taking the first recording
	// cell's report as the representative is worker-count-invariant —
	// unlike MergeReports' first-list-wins choice, whose clock vectors
	// would leak the grid partitioning. Occurrence counts still sum
	// across every worker's detector: the total is per-cell work, not
	// per-worker work.
	counts := make(map[string]int)
	for _, det := range dets {
		if det == nil {
			continue
		}
		for _, r := range det.Reports() {
			counts[r.Key()] += r.Count
		}
	}
	reps := make(map[string]*race.Report, len(counts))
	var mergedList []*race.Report
	for i := range cells {
		c := &cells[i]
		if c.err != nil {
			out.Schedules = countRan(cells[:i])
			out.Elapsed = time.Since(start)
			return out, c.err
		}
		if !c.ran {
			continue
		}
		sc := scheduleOf(opts, i)
		if c.stepLimit {
			out.StepLimited++
		}
		if c.violation != "" {
			out.Findings = append(out.Findings, Finding{
				Kind: FindingViolation, Schedule: sc, Msg: c.violation,
			})
		}
		for _, r := range c.newReports {
			k := r.Key()
			if reps[k] != nil {
				continue
			}
			rep := new(race.Report)
			*rep = *r
			rep.Count = counts[k]
			reps[k] = rep
			mergedList = append(mergedList, rep)
			out.Findings = append(out.Findings, Finding{
				Kind: FindingRace, Schedule: sc, Report: rep,
			})
		}
		out.Steps += c.steps
	}
	sorted := append([]*race.Report(nil), mergedList...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })
	if len(sorted) > opts.MaxReports {
		sorted = sorted[:opts.MaxReports]
	}
	merged := race.New(opts.Model, race.Options{MaxReports: opts.MaxReports})
	merged.Adopt(sorted)
	out.Detector = merged
	out.Schedules = countRan(cells)
	out.Stopped = stop.Load() < int64(len(cells))
	out.VMResets, out.VMAllocs = resets.Load(), allocs.Load()
	// Each worker's sampler accumulated its tallies locally; fold them in.
	for _, s := range smps {
		if s != nil {
			out.Forwarded += s.forwarded
			out.Skipped += s.skipped
		}
	}
	cForwarded.Add(out.Forwarded)
	cSkipped.Add(out.Skipped)
	out.Elapsed = time.Since(start)
	if races, viols := out.tallyFindings(); races+viols > 0 {
		opts.Obs.Counter("stress.races_found").Add(int64(races))
		opts.Obs.Counter("stress.violations_found").Add(int64(viols))
		opts.Obs.Log().Event("stress.findings").
			Str("module", m.Name).Int("races", int64(races)).Int("violations", int64(viols)).Emit()
	}
	sp.Arg("schedules", out.Schedules).Arg("findings", len(out.Findings))
	return out, nil
}

// tallyFindings counts findings by kind.
func (r *Result) tallyFindings() (races, violations int) {
	for _, f := range r.Findings {
		if f.Kind == FindingRace {
			races++
		} else {
			violations++
		}
	}
	return
}

// scheduleOf maps a grid cell index to its schedule (mode-major, like
// race.Sweep).
func scheduleOf(opts Options, i int) Schedule {
	mode := opts.Modes[i/opts.Seeds]
	ordinal := i%opts.Seeds + 1
	return Schedule{
		Mode:    mode,
		Ordinal: ordinal,
		Seed:    vm.GridSeed(opts.BaseSeed, mode, int64(ordinal)),
		Cell:    i,
	}
}

// cellStops reports whether any of the cell's findings satisfies the
// sweep's StopWhen predicate.
func cellStops(opts Options, sc Schedule, c *cell) bool {
	if c.violation != "" && opts.StopWhen(Finding{Kind: FindingViolation, Schedule: sc, Msg: c.violation}) {
		return true
	}
	for _, r := range c.newReports {
		if opts.StopWhen(Finding{Kind: FindingRace, Schedule: sc, Report: r}) {
			return true
		}
	}
	return false
}

// countRan counts executed cells.
func countRan(cells []cell) int {
	n := 0
	for i := range cells {
		if cells[i].ran {
			n++
		}
	}
	return n
}

// reseed is the pooled VM's controller shell: the worker swaps the
// seeded scheduler behind it between Reset calls, so one VM serves
// every schedule of the worker's share of the grid.
type reseed struct{ inner vm.Scheduler }

func (r *reseed) PickThread(runnable []int) int { return r.inner.PickThread(runnable) }
func (r *reseed) PickRead(a memmodel.Addr, eligible []int) int {
	return r.inner.PickRead(a, eligible)
}
func (r *reseed) PickNondet(max int) int { return r.inner.PickNondet(max) }

// Replay re-executes one schedule exactly — same scheduler seed, same
// sampling salt — with a fresh full-history detector, optionally with
// the visible-operation trace enabled. The returned detector holds
// exactly the races that schedule exposes.
func Replay(m *ir.Module, opts Options, sc Schedule, trace bool) (*vm.Result, *race.Detector, error) {
	opts.resolve()
	det := race.New(opts.Model, race.Options{MaxReports: opts.MaxReports, Obs: opts.Obs})
	smp := newSampler(det, opts.Model, opts.Sample)
	smp.begin(mix(uint64(sc.Seed)))
	res, err := vm.Run(m, vm.Options{
		Model:        opts.Model,
		Entries:      opts.Entries,
		Controller:   vm.NewScheduler(sc.Mode, sc.Seed),
		MaxSteps:     opts.MaxSteps,
		Costs:        vm.DefaultCosts(),
		Hook:         smp,
		TraceVisible: trace,
		Obs:          opts.Obs,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("stress replay (%s): %w", sc, err)
	}
	return res, det, nil
}
