package stress

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/race"
	"repro/internal/vm"
)

// harnessSpec is the standard planted-defect module for the engine
// tests: small enough to sweep fast, with every site kind represented
// so the harness exercises each emission path.
func harnessSpec() appgen.ModuleSpec {
	return appgen.ModuleSpec{
		Name: "stress-harness", Seed: 42,
		SpinSites: 4, StructSpinSites: 3, StructKinds: 2,
		NestedSpinSites: 2, SeqlockSites: 2,
		VolatileVars: 1, AtomicVars: 1,
		DataGlobals: 4, FillerFuncs: 6,
		PlantRace: true, HarnessThreads: 3,
	}
}

// portedHarness compiles and ports the spec, returning the ported
// module and its harness entries.
func portedHarness(t *testing.T, spec appgen.ModuleSpec) (*ir.Module, []string) {
	t.Helper()
	src, _ := appgen.GenerateLarge(spec)
	res, err := minic.Compile(spec.Name+".c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := atomig.Port(res.Module, atomig.DefaultOptions()); err != nil {
		t.Fatalf("port: %v", err)
	}
	return res.Module, spec.HarnessEntries()
}

// gapLoc is the planted race's location.
var gapLoc = alias.Loc{Kind: alias.LocGlobal, Name: "lg_gap_data"}

// TestSweepFindsPlantedRace: the engine's reason to exist. A correctly
// ported module with the planted seqlock-gap defect must (a) run every
// harness schedule to completion — no violations, no step-limit
// livelocks — and (b) report the race on the gap data location.
func TestSweepFindsPlantedRace(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	res, err := Sweep(m, Options{Entries: entries, Seeds: 20, Workers: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if v := res.Violations(); len(v) > 0 {
		t.Fatalf("ported harness violated:\n%s", strings.Join(v, "\n"))
	}
	if res.StepLimited > 0 {
		t.Fatalf("%d of %d schedules hit the step budget: harness livelock", res.StepLimited, res.Schedules)
	}
	found := false
	for _, r := range res.Races() {
		if r.Loc == gapLoc {
			found = true
		} else {
			t.Errorf("unexpected race beyond the planted one:\n%s", r)
		}
	}
	if !found {
		t.Fatalf("planted race on %s not found in %d schedules (races: %d)",
			gapLoc, res.Schedules, len(res.Races()))
	}
}

// TestSweepCleanWithoutPlant: the same harness without the planted
// defect is the negative control — the generated synchronization is
// race-free after the port, so any report is an engine false positive
// or a harness bug.
func TestSweepCleanWithoutPlant(t *testing.T) {
	spec := harnessSpec()
	spec.PlantRace = false
	m, entries := portedHarness(t, spec)
	res, err := Sweep(m, Options{Entries: entries, Seeds: 20, Workers: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if v := res.Violations(); len(v) > 0 {
		t.Fatalf("clean harness violated:\n%s", strings.Join(v, "\n"))
	}
	if len(res.Races()) > 0 {
		t.Fatalf("clean harness raced:\n%s", race.FormatReports(res.Races()))
	}
}

// fingerprint renders everything determinism covers: schedule counts,
// total steps, and every finding with its schedule provenance and full
// race report.
func fingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedules=%d steps=%d stepLimited=%d findings=%d\n",
		res.Schedules, res.Steps, res.StepLimited, len(res.Findings))
	for _, f := range res.Findings {
		fmt.Fprintf(&b, "%s\n", f)
		if f.Report != nil {
			b.WriteString(f.Report.String())
		}
	}
	b.WriteString(race.FormatReports(res.Races()))
	return b.String()
}

// TestSweepDeterministicAcrossWorkers: the seed-to-schedule map is a
// pure function of the grid cell and findings are assembled in grid
// order with earliest-cell attribution, so the whole result — counts,
// findings, reports, provenance — is byte-identical at every -j.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	var want string
	for _, workers := range []int{1, 2, 8} {
		res, err := Sweep(m, Options{Entries: entries, Seeds: 12, Workers: workers})
		if err != nil {
			t.Fatalf("sweep (j=%d): %v", workers, err)
		}
		got := fingerprint(res)
		if want == "" {
			want = got
			if len(res.Findings) == 0 {
				t.Fatal("determinism test needs at least one finding")
			}
			continue
		}
		if got != want {
			t.Fatalf("result differs at j=%d:\n--- j=1\n%s\n--- j=%d\n%s", workers, want, workers, got)
		}
	}
}

// TestSweepSamplingSound: at any sampling fraction the engine reports
// only races the full detector also reports (sampling may only lose
// findings, never invent them), and the planted race survives modest
// fractions because the per-schedule salt re-draws the observed
// location subset every schedule.
func TestSweepSamplingSound(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	full, err := Sweep(m, Options{Entries: entries, Seeds: 16, Workers: 4})
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}
	fullKeys := make(map[string]bool)
	for _, r := range full.Races() {
		fullKeys[r.Key()] = true
	}
	for _, sample := range []float64{0.5, 0.25} {
		res, err := Sweep(m, Options{Entries: entries, Seeds: 16, Workers: 4, Sample: sample})
		if err != nil {
			t.Fatalf("sweep (sample=%g): %v", sample, err)
		}
		if res.Skipped == 0 {
			t.Errorf("sample=%g skipped nothing: sampler inert", sample)
		}
		for _, r := range res.Races() {
			if !fullKeys[r.Key()] {
				t.Errorf("sample=%g invented a race the full detector never saw:\n%s", sample, r)
			}
		}
	}
}

// TestReplayReproducesFinding: a finding's Schedule replays to the
// same race — the seed is the whole reproduction recipe.
func TestReplayReproducesFinding(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	opts := Options{Entries: entries, Seeds: 12, Workers: 4}
	res, err := Sweep(m, opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var target *Finding
	for i := range res.Findings {
		if res.Findings[i].Kind == FindingRace && res.Findings[i].Report.Loc == gapLoc {
			target = &res.Findings[i]
			break
		}
	}
	if target == nil {
		t.Fatal("no race finding to replay")
	}
	_, det, err := Replay(m, opts, target.Schedule, false)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, r := range det.Reports() {
		if r.Key() == target.Report.Key() {
			return
		}
	}
	t.Fatalf("replay of %s did not reproduce race %s; got:\n%s",
		target.Schedule, target.Report.Key(), race.FormatReports(det.Reports()))
}

// TestSweepStopWhen: the early-exit predicate halts the sweep without
// running the whole grid, and the satisfying finding is present.
func TestSweepStopWhen(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	res, err := Sweep(m, Options{
		Entries: entries, Seeds: 200, Workers: 2,
		StopWhen: func(f Finding) bool { return f.Kind == FindingRace && f.Report.Loc == gapLoc },
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !res.Stopped {
		t.Fatal("sweep did not stop early")
	}
	total := len(vm.AllSchedModes()) * 200
	if res.Schedules >= total {
		t.Fatalf("stop-when ran the whole %d-cell grid", total)
	}
	for _, f := range res.Findings {
		if f.Kind == FindingRace && f.Report.Loc == gapLoc {
			return
		}
	}
	t.Fatal("stopped sweep lost the satisfying finding")
}

// TestPooledVMReuse: each worker builds one VM and recycles it through
// Reset for the rest of its grid share.
func TestPooledVMReuse(t *testing.T) {
	m, entries := portedHarness(t, harnessSpec())
	res, err := Sweep(m, Options{Entries: entries, Seeds: 10, Workers: 2})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.VMAllocs > 2 {
		t.Errorf("expected at most one VM per worker, got %d allocs", res.VMAllocs)
	}
	if res.VMResets == 0 {
		t.Error("no VM resets: pooling inert")
	}
	wantRuns := int64(res.Schedules)
	if res.VMAllocs+res.VMResets != wantRuns {
		t.Errorf("allocs(%d)+resets(%d) != schedules(%d)", res.VMAllocs, res.VMResets, wantRuns)
	}
}
