// Package transform implements the program transformations of the
// atomig pipeline (paper sections 3.2–3.4) plus the two baseline porting
// strategies the paper evaluates against: the Naïve all-SC strategy and
// a Lasagne-style explicit-fence strategy.
package transform

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// MakeAccessSC upgrades a memory access to a sequentially consistent
// atomic access (an implicit barrier on Arm: LDAR/STLR or an
// acquire/release exclusive pair). It reports whether the instruction
// changed.
func MakeAccessSC(in *ir.Instr, mark ir.Mark) bool {
	if !in.IsMemAccess() {
		panic(fmt.Sprintf("transform: MakeAccessSC on non-access %s", in))
	}
	in.SetMark(mark)
	if in.Ord == ir.SeqCst {
		return false
	}
	in.Ord = ir.SeqCst
	return true
}

// insertFence splices a seq_cst fence into the block containing anchor,
// immediately before (offset 0) or after (offset 1) it.
func insertFence(anchor *ir.Instr, offset int) *ir.Instr {
	blk := anchor.Blk
	pos := -1
	for i, in := range blk.Instrs {
		if in == anchor {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic("transform: anchor not in its block")
	}
	f := &ir.Instr{
		Op: ir.OpFence, ID: blk.Fn.NextID(), Blk: blk, Ty: ir.Void,
		Ord: ir.SeqCst, Marks: ir.MarkInsertedFence,
	}
	at := pos + offset
	blk.Instrs = append(blk.Instrs, nil)
	copy(blk.Instrs[at+1:], blk.Instrs[at:])
	blk.Instrs[at] = f
	return f
}

// InsertFenceBefore inserts an explicit seq_cst fence before anchor.
func InsertFenceBefore(anchor *ir.Instr) *ir.Instr { return insertFence(anchor, 0) }

// InsertFenceAfter inserts an explicit seq_cst fence after anchor.
func InsertFenceAfter(anchor *ir.Instr) *ir.Instr { return insertFence(anchor, 1) }

// ExplicitStats reports what the explicit-annotation pass changed.
type ExplicitStats struct {
	// VolatileConverted counts volatile accesses turned into SC atomics.
	VolatileConverted int
	// AtomicUpgraded counts existing atomics whose (weaker) order was
	// raised to seq_cst.
	AtomicUpgraded int
}

// UpgradeExplicitAnnotations implements paper section 3.2: accesses to
// volatile locations become SC atomics, and existing atomic accesses
// with any weaker memory order are raised to SC (on TSO most orders are
// indistinguishable, so legacy code frequently picks one that is too
// weak for WMM). Inline-assembly barriers were already mapped to
// builtins/fences by the frontend.
func UpgradeExplicitAnnotations(m *ir.Module) ExplicitStats {
	var st ExplicitStats
	for _, f := range m.Funcs {
		fst := UpgradeExplicitAnnotationsFunc(f)
		st.VolatileConverted += fst.VolatileConverted
		st.AtomicUpgraded += fst.AtomicUpgraded
	}
	return st
}

// UpgradeExplicitAnnotationsFunc is the per-function unit of the
// explicit-annotation pass. It touches only instructions of f, so the
// pipeline may run it on distinct functions concurrently.
func UpgradeExplicitAnnotationsFunc(f *ir.Func) ExplicitStats {
	var st ExplicitStats
	f.Instrs(func(in *ir.Instr) {
		if !in.IsMemAccess() {
			return
		}
		switch {
		case in.Volatile && in.Ord != ir.SeqCst:
			MakeAccessSC(in, ir.MarkFromVolatile)
			st.VolatileConverted++
		case in.Ord.Atomic() && in.Ord != ir.SeqCst:
			MakeAccessSC(in, ir.MarkFromAtomic)
			st.AtomicUpgraded++
		}
	})
	return st
}

// Naive implements the naïve porting strategy from the paper's Table 1:
// every access that may touch shared (non-provably-local) memory becomes
// a sequentially consistent atomic. Safe, scalable — and slow. Returns
// the number of accesses converted.
func Naive(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		loc := analysis.AnalyzeLocality(f)
		f.Instrs(func(in *ir.Instr) {
			if !in.IsMemAccess() {
				return
			}
			if !loc.NonLocal(in.Args[0]) {
				return
			}
			if MakeAccessSC(in, ir.MarkNaive) {
				n++
			}
		})
	}
	return n
}

// LasagneStats reports the Lasagne-style baseline's work.
type LasagneStats struct {
	FencesInserted int
	FencesElided   int
}

// LasagneStyle implements a barrier-removal baseline modeled on Lasagne
// (PLDI 2022): first make the program sequentially consistent using
// explicit fences around every potentially-shared access (binary-lifting
// tools cannot use implicit barriers because they cannot re-type
// accesses), then remove provably redundant fences. The removal pass
// elides fences for provably function-local accesses and merges adjacent
// fences. The paper's Table 6 shows this strategy costs more than Naïve
// because explicit fences are substantially slower than implicit ones.
func LasagneStyle(m *ir.Module) LasagneStats {
	var st LasagneStats
	for _, f := range m.Funcs {
		loc := analysis.AnalyzeLocality(f)
		var shared []*ir.Instr
		f.Instrs(func(in *ir.Instr) {
			if in.IsMemAccess() && loc.NonLocal(in.Args[0]) {
				shared = append(shared, in)
			}
		})
		for _, in := range shared {
			// A fence before each shared load and around each shared
			// store restores SC ordering among shared accesses.
			if in.Reads() {
				InsertFenceBefore(in)
				st.FencesInserted++
			}
			if in.Writes() {
				InsertFenceAfter(in)
				st.FencesInserted++
			}
		}
	}
	st.FencesElided = mergeAdjacentFences(m)
	return st
}

// mergeAdjacentFences removes a fence when the immediately preceding
// instruction in the same block is also a fence of equal or stronger
// order — the formally verified "redundant barrier" elimination from the
// barrier-removal literature. Returns the number removed.
func mergeAdjacentFences(m *ir.Module) int {
	removed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			var prev *ir.Instr
			for _, in := range b.Instrs {
				if in.Op == ir.OpFence && prev != nil && prev.Op == ir.OpFence && prev.Ord >= in.Ord {
					removed++
					continue
				}
				out = append(out, in)
				prev = in
			}
			b.Instrs = out
		}
	}
	return removed
}

// CountBarriers tallies the synchronization constructs present in a
// module: explicit fences and implicit barriers (atomic accesses).
func CountBarriers(m *ir.Module) (explicit, implicit int) {
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		switch {
		case in.Op == ir.OpFence:
			explicit++
		case in.IsMemAccess() && in.Ord.Atomic():
			implicit++
		}
	})
	return explicit, implicit
}
