package transform

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

func TestMakeAccessSC(t *testing.T) {
	m := compile(t, `
int g;
int f(void) { return g; }
`)
	var ld *ir.Instr
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpLoad && ld == nil {
			ld = in
		}
	})
	if !MakeAccessSC(ld, ir.MarkNaive) {
		t.Fatal("first conversion reported no change")
	}
	if ld.Ord != ir.SeqCst || !ld.HasMark(ir.MarkNaive) {
		t.Fatal("conversion did not apply")
	}
	if MakeAccessSC(ld, ir.MarkSticky) {
		t.Fatal("second conversion reported a change")
	}
	if !ld.HasMark(ir.MarkSticky) {
		t.Fatal("mark not accumulated")
	}
}

func TestMakeAccessSCPanicsOnNonAccess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-access")
		}
	}()
	MakeAccessSC(&ir.Instr{Op: ir.OpBin}, 0)
}

func TestInsertFences(t *testing.T) {
	m := compile(t, `
int g;
void f(void) { g = 1; g = 2; }
`)
	blk := m.Func("f").Entry()
	var stores []*ir.Instr
	for _, in := range blk.Instrs {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	}
	before := InsertFenceBefore(stores[0])
	after := InsertFenceAfter(stores[1])
	if before.Ord != ir.SeqCst || !before.HasMark(ir.MarkInsertedFence) {
		t.Fatal("fence attributes wrong")
	}
	// Verify placement.
	idx := map[*ir.Instr]int{}
	for i, in := range blk.Instrs {
		idx[in] = i
	}
	if idx[before] != idx[stores[0]]-1 {
		t.Errorf("fence-before misplaced: %d vs %d", idx[before], idx[stores[0]])
	}
	if idx[after] != idx[stores[1]]+1 {
		t.Errorf("fence-after misplaced: %d vs %d", idx[after], idx[stores[1]])
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeExplicitAnnotations(t *testing.T) {
	m := compile(t, `
volatile int v;
int g;
int f(void) {
  v = 1;                  // volatile store -> SC
  int a = v;              // volatile load -> SC
  __store_rel(&g, 2);     // release -> SC
  int b = __load_acq(&g); // acquire -> SC
  int c = __load_sc(&g);  // already SC: untouched
  return a + b + c;
}
`)
	st := UpgradeExplicitAnnotations(m)
	if st.VolatileConverted != 2 {
		t.Errorf("VolatileConverted = %d, want 2", st.VolatileConverted)
	}
	if st.AtomicUpgraded != 2 {
		t.Errorf("AtomicUpgraded = %d, want 2", st.AtomicUpgraded)
	}
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.IsMemAccess() && (in.Volatile || in.HasMark(ir.MarkFromAtomic)) && in.Ord != ir.SeqCst {
			t.Errorf("unconverted access: %s", in)
		}
	})
}

func TestNaiveConvertsOnlyShared(t *testing.T) {
	m := compile(t, `
int g;
int f(int *p) {
  int local = 3;          // provably local: untouched
  local = local + g;      // g access converted
  *p = local;             // pointer target: converted
  return local;
}
`)
	n := Naive(m)
	if n == 0 {
		t.Fatal("nothing converted")
	}
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if !in.IsMemAccess() {
			return
		}
		// Accesses to the local slot must stay plain.
		if a, ok := in.Args[0].(*ir.Instr); ok && a.Op == ir.OpAlloca {
			if in.Ord.Atomic() {
				t.Errorf("local access converted: %s", in)
			}
		}
	})
	if _, impl := CountBarriers(m); impl != n {
		t.Errorf("CountBarriers implicit = %d, converted %d", impl, n)
	}
}

func TestLasagneStyleInsertsAndMerges(t *testing.T) {
	m := compile(t, `
int g;
int h;
void f(void) {
  g = 1;
  h = 2;   // adjacent shared stores: fences merge between them
  int x = g;
  int y = h;
  g = x + y;
}
`)
	st := LasagneStyle(m)
	if st.FencesInserted == 0 {
		t.Fatal("no fences inserted")
	}
	if st.FencesElided == 0 {
		t.Fatal("no fences elided: merge pass inert")
	}
	expl, _ := CountBarriers(m)
	if expl != st.FencesInserted-st.FencesElided {
		t.Errorf("barriers %d != inserted %d - elided %d", expl, st.FencesInserted, st.FencesElided)
	}
	// No two adjacent fences remain.
	m.EachInstr(func(f *ir.Func, in *ir.Instr) { _ = f })
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := 1; i < len(b.Instrs); i++ {
				if b.Instrs[i].Op == ir.OpFence && b.Instrs[i-1].Op == ir.OpFence {
					t.Fatalf("adjacent fences survive in @%s", f.Name)
				}
			}
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestCountBarriers(t *testing.T) {
	m := compile(t, `
_Atomic int a;
int g;
void f(void) {
  a = 1;
  __fence();
  g = a;
  __faa(&a, 1);
}
`)
	expl, impl := CountBarriers(m)
	if expl != 1 {
		t.Errorf("explicit = %d, want 1", expl)
	}
	// Implicit: atomic store a=1, atomic load of a, and the RMW.
	if impl != 3 {
		t.Errorf("implicit = %d, want 3", impl)
	}
}
