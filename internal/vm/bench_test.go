package vm

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/minic"
)

// BenchmarkInterpreterThroughput measures raw interpretation speed on a
// compute kernel (instructions per benchmark op reported as steps).
func BenchmarkInterpreterThroughput(b *testing.B) {
	res, err := minic.Compile("bench", `
int out;
void main_thread(void) {
  int acc = 0;
  for (int i = 0; i < 100000; i = i + 1) {
    acc = (acc * 31 + i) % 65536;
  }
  out = acc;
}
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		r, err := Run(res.Module, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
		if err != nil {
			b.Fatal(err)
		}
		steps = r.Steps
	}
	b.ReportMetric(float64(steps), "instrs/op")
}

// BenchmarkViewMachine measures the weak-memory machine under the
// message-passing workload.
func BenchmarkViewMachine(b *testing.B) {
	res, err := minic.Compile("bench", `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg >= 0);
}
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(res.Module, Options{
			Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
			Seed: int64(i), MaxSteps: 100_000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
