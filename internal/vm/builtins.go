package vm

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/memmodel"
)

// call dispatches OpCall instructions: user functions push a frame,
// builtins execute inline. It reports visibility.
func (v *VM) call(t *thread, in *ir.Instr) (bool, error) {
	c := &v.opts.Costs
	if fn := v.mod.Func(in.Callee); fn != nil {
		// Arguments evaluate in the caller's frame (still t.frame() until
		// the push below).
		nf := v.newFrame(fn, in, t.stackNext)
		for _, a := range in.Args {
			nf.params = append(nf.params, v.eval(t, a))
		}
		t.frames = append(t.frames, nf)
		t.cycles += c.Call
		return false, nil
	}
	switch in.Callee {
	case "assert":
		val := v.eval(t, in.Args[0])
		t.cycles += c.Arith
		if val == 0 {
			v.res.Status = StatusAssertFailed
			v.res.FailMsg = fmt.Sprintf("assertion failed in @%s (thread %d)", t.frame().fn.Name, t.id)
			v.halted = true
		}
		return true, nil

	case "spawn":
		fr, ok := in.Args[0].(*ir.FuncRef)
		if !ok {
			return false, fmt.Errorf("vm: spawn argument is not a function reference")
		}
		// Fork the parent's view into a recycled memmodel thread: joining
		// into an empty view equals cloning (zero timestamps are absent in
		// both representations).
		mm := v.allocMM()
		mm.View.Join(t.mm.View)
		child := v.newThread(fr.Fn, mm)
		if v.hook != nil {
			v.hook.OnSpawn(t.id, child.id)
		}
		t.cycles += c.Call
		return true, nil

	case "join":
		t.cycles += c.Call
		// Re-check in Runnable; if everything else already finished,
		// complete immediately.
		t.state = tBlockedJoin
		done := true
		for _, o := range v.threads {
			if o.id != t.id && o.state != tDone {
				done = false
				break
			}
		}
		if done {
			for _, o := range v.threads {
				if o.id != t.id {
					t.mm.JoinThread(o.mm)
					if v.hook != nil {
						v.hook.OnJoin(t.id, o.id)
					}
				}
			}
			t.state = tRunnable
		}
		return true, nil

	case "barrier":
		n := v.eval(t, in.Args[0])
		t.cycles += c.RMW
		if n <= 1 {
			return true, nil
		}
		bs := v.barriers[n]
		if bs == nil {
			bs = &barrierState{}
			v.barriers[n] = bs
		}
		bs.waiting = append(bs.waiting, t.id)
		if int64(len(bs.waiting)) < n {
			t.state = tBlockedBarrier
			t.barrierN = n
			return true, nil
		}
		// Last arrival: synchronize all participants and release.
		joined := memmodel.NewThread()
		for _, id := range bs.waiting {
			joined.View.Join(v.threads[id].mm.View)
		}
		for _, id := range bs.waiting {
			p := v.threads[id]
			p.mm.View.Join(joined.View)
			p.state = tRunnable
			v.touch(id)
		}
		if v.hook != nil {
			v.hook.OnBarrier(bs.waiting)
		}
		delete(v.barriers, n)
		return true, nil

	case "tid":
		t.frame().regs[in.ID] = int64(t.id)
		t.cycles += c.Arith
		return false, nil

	case "nondet":
		t.frame().regs[in.ID] = int64(v.ctrl.PickNondet(2))
		t.cycles += c.Arith
		return true, nil

	case "malloc":
		size := v.eval(t, in.Args[0])
		if size < 0 {
			return false, fmt.Errorf("vm: malloc of negative size")
		}
		addr := v.heapNext
		v.heapNext += memmodel.Addr(size)
		t.frame().regs[in.ID] = int64(addr)
		t.cycles += c.Call
		return false, nil

	case "free", "yield", "pause", "asm", "compiler_barrier":
		t.cycles += c.Arith
		return false, nil

	case "print":
		for _, a := range in.Args {
			v.res.Output = append(v.res.Output, v.eval(t, a))
		}
		t.cycles += c.Arith
		return false, nil
	}
	return false, fmt.Errorf("vm: call to unknown builtin @%s", in.Callee)
}
