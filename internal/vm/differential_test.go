package vm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/opt"
)

// TestDifferentialSemantics generates random straight-line programs,
// evaluates them with a direct Go reference interpreter, and checks the
// whole MiniC → AIR → VM stack produces identical results. This is the
// end-to-end guard for the frontend's operator precedence and the VM's
// arithmetic.
func TestDifferentialSemantics(t *testing.T) {
	ops := []struct {
		sym  string
		eval func(a, b int64) int64
	}{
		{"+", func(a, b int64) int64 { return a + b }},
		{"-", func(a, b int64) int64 { return a - b }},
		{"*", func(a, b int64) int64 { return a * b }},
		{"&", func(a, b int64) int64 { return a & b }},
		{"|", func(a, b int64) int64 { return a | b }},
		{"^", func(a, b int64) int64 { return a ^ b }},
		{"/", func(a, b int64) int64 {
			if b == 0 {
				return 0 // guarded in generation
			}
			return a / b
		}},
		{"%", func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
	}
	cmps := []struct {
		sym  string
		eval func(a, b int64) bool
	}{
		{"==", func(a, b int64) bool { return a == b }},
		{"!=", func(a, b int64) bool { return a != b }},
		{"<", func(a, b int64) bool { return a < b }},
		{"<=", func(a, b int64) bool { return a <= b }},
		{">", func(a, b int64) bool { return a > b }},
		{">=", func(a, b int64) bool { return a >= b }},
	}

	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nVars := rng.Intn(6) + 2
		vals := make([]int64, nVars)
		var sb strings.Builder
		sb.WriteString("void main_thread(void) {\n")
		for i := range vals {
			vals[i] = int64(rng.Intn(201) - 100)
			fmt.Fprintf(&sb, "  int v%d = %d;\n", i, vals[i])
		}
		stmts := rng.Intn(18) + 4
		for s := 0; s < stmts; s++ {
			dst := rng.Intn(nVars)
			a, b := rng.Intn(nVars), rng.Intn(nVars)
			switch rng.Intn(3) {
			case 0: // arithmetic
				op := ops[rng.Intn(len(ops))]
				if (op.sym == "/" || op.sym == "%") && vals[b] == 0 {
					op = ops[0]
				}
				fmt.Fprintf(&sb, "  v%d = v%d %s v%d;\n", dst, a, op.sym, b)
				vals[dst] = op.eval(vals[a], vals[b])
			case 1: // comparison into int
				c := cmps[rng.Intn(len(cmps))]
				fmt.Fprintf(&sb, "  v%d = v%d %s v%d;\n", dst, a, c.sym, b)
				if c.eval(vals[a], vals[b]) {
					vals[dst] = 1
				} else {
					vals[dst] = 0
				}
			case 2: // conditional update
				c := cmps[rng.Intn(len(cmps))]
				op := ops[rng.Intn(3)] // + - * only
				fmt.Fprintf(&sb, "  if (v%d %s v%d) { v%d = v%d %s v%d; }\n",
					a, c.sym, b, dst, a, op.sym, b)
				if c.eval(vals[a], vals[b]) {
					vals[dst] = op.eval(vals[a], vals[b])
				}
			}
		}
		for i := range vals {
			fmt.Fprintf(&sb, "  print(v%d);\n", i)
		}
		sb.WriteString("}\n")

		res, err := minic.Compile("diff", sb.String())
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, sb.String())
		}
		out, err := Run(res.Module, Options{
			Model: memmodel.ModelSC, Entries: []string{"main_thread"},
		})
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		if out.Status != StatusDone {
			t.Fatalf("trial %d: status %s", trial, out.Status)
		}
		if len(out.Output) != nVars {
			t.Fatalf("trial %d: outputs %d, want %d", trial, len(out.Output), nVars)
		}
		for i, want := range vals {
			if out.Output[i] != want {
				t.Fatalf("trial %d: v%d = %d, reference says %d\nprogram:\n%s",
					trial, i, out.Output[i], want, sb.String())
			}
		}
	}
}

// TestDifferentialLoops does the same for loop constructs: counted
// loops with breaks/continues against a Go reference.
func TestDifferentialLoops(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		bound := rng.Intn(20) + 1
		step := rng.Intn(3) + 1
		breakAt := rng.Intn(30) + 1
		contMod := rng.Intn(4) + 2

		src := fmt.Sprintf(`
void main_thread(void) {
  int acc = 0;
  for (int i = 0; i < %d; i = i + %d) {
    if (i == %d) { break; }
    if (i %% %d == 0) { continue; }
    acc = acc + i;
  }
  int j = 0;
  do {
    acc = acc + 1;
    j = j + 1;
  } while (j < %d);
  while (j > 0) {
    j = j - 2;
    acc = acc + j;
  }
  print(acc);
}
`, bound, step, breakAt, contMod, step+2)

		// Reference.
		acc := int64(0)
		for i := 0; i < bound; i += step {
			if i == breakAt {
				break
			}
			if i%contMod == 0 {
				continue
			}
			acc += int64(i)
		}
		j := 0
		for {
			acc++
			j++
			if j >= step+2 {
				break
			}
		}
		for j > 0 {
			j -= 2
			acc += int64(j)
		}

		res, err := minic.Compile("diff", src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		out, err := Run(res.Module, Options{
			Model: memmodel.ModelSC, Entries: []string{"main_thread"},
		})
		if err != nil || out.Status != StatusDone {
			t.Fatalf("trial %d: %v %v", trial, err, out.Status)
		}
		if out.Output[0] != acc {
			t.Fatalf("trial %d: acc = %d, reference %d\n%s", trial, out.Output[0], acc, src)
		}
	}
}

// TestDifferentialWithOptimizer re-runs the random straight-line
// programs through the optimizer and requires identical outputs — the
// optimizer must be semantics-preserving on sequential code.
func TestDifferentialWithOptimizer(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		n := rng.Intn(5) + 2
		var sb strings.Builder
		sb.WriteString("void main_thread(void) {\n")
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(101) - 50)
			fmt.Fprintf(&sb, "  int v%d = %d;\n", i, vals[i])
		}
		for s := 0; s < rng.Intn(14)+4; s++ {
			d, a, b := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "  v%d = v%d + v%d * 3;\n", d, a, b)
				vals[d] = vals[a] + vals[b]*3
			case 1:
				fmt.Fprintf(&sb, "  if (v%d > v%d) { v%d = v%d - 1; }\n", a, b, d, d)
				if vals[a] > vals[b] {
					vals[d]--
				}
			case 2:
				fmt.Fprintf(&sb, "  for (int i = 0; i < 5; i = i + 1) { v%d = v%d + i; }\n", d, d)
				vals[d] += 10
			}
		}
		for i := range vals {
			fmt.Fprintf(&sb, "  print(v%d);\n", i)
		}
		sb.WriteString("}\n")
		res, err := minic.Compile("diffopt", sb.String())
		if err != nil {
			t.Fatal(err)
		}
		opt.Optimize(res.Module)
		out, err := Run(res.Module, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
		if err != nil || out.Status != StatusDone {
			t.Fatalf("trial %d: %v %v", trial, err, out.Status)
		}
		for i, want := range vals {
			if out.Output[i] != want {
				t.Fatalf("trial %d: v%d = %d, want %d\n%s", trial, i, out.Output[i], want, sb.String())
			}
		}
	}
}
