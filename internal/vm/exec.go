package vm

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memmodel"
)

// Memory layout (cell addresses).
const (
	globalBase = 0x0000_1000
	heapBase   = 0x1000_0000
	stackBase  = 0x8000_0000
	stackSize  = 0x0010_0000 // per-thread stack region
)

type tstate int

const (
	tRunnable tstate = iota
	tBlockedJoin
	tBlockedBarrier
	tDone
)

type frame struct {
	fn         *ir.Func
	blk        *ir.Block
	ip         int
	regs       []int64
	params     []int64
	callInstr  *ir.Instr // caller instruction awaiting the return value
	savedStack memmodel.Addr
}

type thread struct {
	id        int
	frames    []*frame
	mm        *memmodel.Thread
	cycles    int64
	state     tstate
	barrierN  int64
	stackNext memmodel.Addr
	retVal    int64
	entry     bool
	// lastVisible is the global step count at this thread's most recent
	// visible operation (watchdog progress metric).
	lastVisible int64
	// blockEntries counts block entries when the watchdog is enabled.
	blockEntries map[*ir.Block]int64
	// dirtyShared records whether the thread wrote shared memory since
	// its last fence; dirtyHot additionally records whether one of
	// those writes took a cell over from another thread. Both drive the
	// fence drain cost.
	dirtyShared bool
	dirtyHot    bool
}

func (t *thread) frame() *frame { return t.frames[len(t.frames)-1] }

func (t *thread) ownStack(a memmodel.Addr) bool {
	base := memmodel.Addr(stackBase + t.id*stackSize)
	return a >= base && a < base+stackSize
}

type barrierState struct {
	waiting []int
}

// VM is one execution instance.
type VM struct {
	mod      *ir.Module
	opts     Options
	ctrl     Controller
	mem      memory
	hook     Hook
	useView  bool
	threads  []*thread
	globals  map[string]memmodel.Addr
	heapNext memmodel.Addr
	res      *Result
	barriers map[int64]*barrierState
	halted   bool
	// lastWriter tracks cache-line ownership for the contention
	// surcharge of the cost model; sharedWith tracks which threads have
	// re-read a cell since its last write (a MESI shared-state sketch);
	// multiWritten marks cells written more than once, separating
	// actively mutated cells (whose cross-thread reads ping-pong) from
	// write-once data (whose cold-fill cost the baseline pays too).
	lastWriter   map[memmodel.Addr]int
	sharedWith   map[memmodel.Addr]uint32
	multiWritten map[memmodel.Addr]bool
	// runBuf is reused by Runnable to avoid a per-step allocation.
	runBuf []int
	// Incremental state-hash caches (see hash.go): threadHash[i] is the
	// cached component hash of threads[i], recomputed when threadDirty[i];
	// hashBuf is the reusable serialization scratch.
	threadHash  []uint64
	threadDirty []bool
	hashBuf     []byte
	// Free lists for Reset-based VM reuse: finished frames, thread shells
	// and memmodel views are recycled instead of reallocated, which is
	// what makes one VM cheap to drive across millions of model-checker
	// executions.
	framePool  []*frame
	threadPool []*thread
	mmPool     []*memmodel.Thread
}

// chargeWrite applies the write cost including the contention surcharge
// for atomic writes to cells last written by another thread, and
// invalidates the cell's shared state.
func (v *VM) chargeWrite(t *thread, a memmodel.Addr, atomic bool, base int64) {
	t.cycles += base
	owner, written := v.lastWriter[a]
	foreign := written && owner != t.id
	if atomic && foreign {
		t.cycles += v.opts.Costs.Contended
	}
	if !t.ownStack(a) {
		t.dirtyShared = true
		if foreign {
			t.dirtyHot = true
		}
	}
	if written {
		v.multiWritten[a] = true
	}
	v.lastWriter[a] = t.id
	delete(v.sharedWith, a)
}

// chargeLoad applies the load cost plus the invalidation surcharge:
// the first read of an actively mutated cell whose last writer was
// another thread refetches the line. Atomic loads pay the full fill
// (LDAR stalls the pipeline); plain loads pay the residue out-of-order
// execution cannot hide.
func (v *VM) chargeLoad(t *thread, a memmodel.Addr, base int64, atomic bool) {
	t.cycles += base
	owner, ok := v.lastWriter[a]
	if !ok || owner == t.id || !v.multiWritten[a] {
		return
	}
	bit := uint32(1) << uint(t.id%32)
	if v.sharedWith[a]&bit == 0 {
		if atomic {
			t.cycles += v.opts.Costs.ContendedLoad
		} else {
			t.cycles += v.opts.Costs.ContendedPlain
		}
		v.sharedWith[a] |= bit
	}
}

// oracleAdapter routes the view machine's read choices through the
// controller.
type oracleAdapter struct{ ctrl Controller }

// PickRead delegates to the controller.
func (o oracleAdapter) PickRead(a memmodel.Addr, eligible []int) int {
	return o.ctrl.PickRead(a, eligible)
}

// UseViewMemory reports whether the options select the view machine:
// any non-SC model needs it to exhibit weak behaviors; pure performance
// runs pass ModelSC (or set Controller to nil and Model to SC) and get
// the fast flat backend. The model checker always runs with a weak
// model.
func useViewMemory(opts Options) bool { return opts.Model != memmodel.ModelSC }

// New prepares an execution of the module's entry threads. Internal
// panics (e.g. global layout over malformed types) are contained and
// returned as structured errors.
func New(m *ir.Module, opts Options) (v *VM, err error) {
	defer diag.Guard("vm.New", &err)
	if len(opts.Entries) == 0 {
		return nil, fmt.Errorf("vm: no entry functions")
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 20_000_000
	}
	if opts.Costs == (Costs{}) {
		opts.Costs = DefaultCosts()
	}
	ctrl := opts.Controller
	if ctrl == nil {
		ctrl = NewRandomController(opts.Seed)
	}
	v = &VM{
		mod:          m,
		opts:         opts,
		ctrl:         ctrl,
		hook:         opts.Hook,
		useView:      useViewMemory(opts),
		globals:      make(map[string]memmodel.Addr),
		heapNext:     heapBase,
		res:          &Result{},
		barriers:     make(map[int64]*barrierState),
		lastWriter:   make(map[memmodel.Addr]int),
		sharedWith:   make(map[memmodel.Addr]uint32),
		multiWritten: make(map[memmodel.Addr]bool),
	}
	if opts.Profile {
		v.res.FuncCycles = make(map[string]int64)
	}
	if v.useView {
		v.mem = newViewMem(opts.Model, oracleAdapter{ctrl})
	} else {
		v.mem = newFlatMem()
	}
	// Lay out globals; the addresses are a function of the module only
	// and stay valid across Reset.
	next := memmodel.Addr(globalBase)
	for _, g := range m.Globals {
		v.globals[g.GName] = next
		next += memmodel.Addr(g.Elem.Cells())
	}
	if err := v.start(); err != nil {
		return nil, err
	}
	return v, nil
}

// start applies the per-execution initial state: global initial values
// and the entry threads. Shared by New and Reset.
func (v *VM) start() error {
	for _, g := range v.mod.Globals {
		base := v.globals[g.GName]
		for i, val := range g.Init {
			if val != 0 {
				v.mem.setInit(base+memmodel.Addr(i), val)
			}
		}
	}
	for _, name := range v.opts.Entries {
		fn := v.mod.Func(name)
		if fn == nil {
			return fmt.Errorf("vm: entry function @%s not found", name)
		}
		if len(fn.Params) != 0 {
			return fmt.Errorf("vm: entry function @%s must take no parameters", name)
		}
		t := v.newThread(fn, v.allocMM())
		t.entry = true
	}
	return nil
}

// Reset restores the VM to its pristine pre-execution state — as if
// freshly built by New with the same module and options — while keeping
// every allocation: memory maps, thread shells, frames and memmodel
// views are recycled through the VM's free lists. The model checker
// drives one VM per worker through millions of executions this way
// instead of paying an allocation storm per replay.
func (v *VM) Reset() (err error) {
	defer diag.Guard("vm.Reset", &err)
	for _, t := range v.threads {
		v.recycleThread(t)
	}
	v.threads = v.threads[:0]
	v.threadHash = v.threadHash[:0]
	v.threadDirty = v.threadDirty[:0]
	v.res = &Result{}
	if v.opts.Profile {
		v.res.FuncCycles = make(map[string]int64)
	}
	v.halted = false
	v.heapNext = heapBase
	clear(v.barriers)
	clear(v.lastWriter)
	clear(v.sharedWith)
	clear(v.multiWritten)
	v.mem.reset()
	return v.start()
}

// allocMM returns an empty memmodel thread view, recycled when the free
// list has one.
func (v *VM) allocMM() *memmodel.Thread {
	if n := len(v.mmPool); n > 0 {
		mm := v.mmPool[n-1]
		v.mmPool = v.mmPool[:n-1]
		mm.Reset()
		return mm
	}
	return memmodel.NewThread()
}

// recycleThread returns a thread's frames, view and shell to the free
// lists.
func (v *VM) recycleThread(t *thread) {
	v.framePool = append(v.framePool, t.frames...)
	if t.mm != nil {
		v.mmPool = append(v.mmPool, t.mm)
		t.mm = nil
	}
	v.threadPool = append(v.threadPool, t)
}

// newFrame returns a frame ready to enter fn, recycling a finished
// frame when possible. Registers are zeroed to match a fresh
// allocation; params start empty for the caller to fill.
func (v *VM) newFrame(fn *ir.Func, callInstr *ir.Instr, savedStack memmodel.Addr) *frame {
	var f *frame
	if n := len(v.framePool); n > 0 {
		f = v.framePool[n-1]
		v.framePool = v.framePool[:n-1]
	} else {
		f = &frame{}
	}
	n := fn.NumIDs()
	if cap(f.regs) < n {
		f.regs = make([]int64, n)
	} else {
		f.regs = f.regs[:n]
		clear(f.regs)
	}
	f.fn = fn
	f.blk = fn.Entry()
	f.ip = 0
	f.params = f.params[:0]
	f.callInstr = callInstr
	f.savedStack = savedStack
	return f
}

func (v *VM) newThread(fn *ir.Func, mm *memmodel.Thread) *thread {
	id := len(v.threads)
	var t *thread
	if n := len(v.threadPool); n > 0 {
		t = v.threadPool[n-1]
		v.threadPool = v.threadPool[:n-1]
		frames := t.frames[:0]
		*t = thread{frames: frames}
	} else {
		t = &thread{}
	}
	t.id = id
	t.mm = mm
	t.stackNext = memmodel.Addr(stackBase + id*stackSize)
	t.frames = append(t.frames, v.newFrame(fn, nil, 0))
	if v.opts.Watchdog {
		t.blockEntries = map[*ir.Block]int64{fn.Entry(): 1}
	}
	v.threads = append(v.threads, t)
	v.threadHash = append(v.threadHash, 0)
	v.threadDirty = append(v.threadDirty, true)
	return t
}

// Runnable returns the indices of threads that can take a step,
// resolving join/barrier unblocking. The returned slice is valid until
// the next Runnable call.
func (v *VM) Runnable() []int {
	run := v.runBuf[:0]
	allDoneExcept := func(self int) bool {
		for _, o := range v.threads {
			if o.id != self && o.state != tDone {
				return false
			}
		}
		return true
	}
	for _, t := range v.threads {
		switch t.state {
		case tRunnable:
			run = append(run, t.id)
		case tBlockedJoin:
			if allDoneExcept(t.id) {
				// Synchronize with every finished thread and resume.
				for _, o := range v.threads {
					if o.id != t.id {
						t.mm.JoinThread(o.mm)
						if v.hook != nil {
							v.hook.OnJoin(t.id, o.id)
						}
					}
				}
				t.state = tRunnable
				v.touch(t.id)
				run = append(run, t.id)
			}
		case tBlockedBarrier:
			// Barrier release happens when the last participant arrives
			// (in the barrier builtin); blocked threads stay blocked here.
		}
	}
	v.runBuf = run
	return run
}

// Done reports whether all threads finished.
func (v *VM) Done() bool {
	for _, t := range v.threads {
		if t.state != tDone {
			return false
		}
	}
	return true
}

// Run drives the execution to completion. Internal panics are contained
// by the diag guard and returned as structured errors.
func (v *VM) Run() (res *Result, err error) {
	defer diag.Guard("vm.Run", &err)
	for v.res.Steps < v.opts.MaxSteps {
		if v.halted {
			break
		}
		run := v.Runnable()
		if len(run) == 0 {
			if v.Done() {
				break
			}
			v.res.Status = StatusDeadlock
			v.finish()
			return v.res, nil
		}
		ti := v.ctrl.PickThread(run)
		if err := v.Step(v.threads[ti]); err != nil {
			return nil, err
		}
	}
	if !v.halted && v.res.Steps >= v.opts.MaxSteps {
		v.res.Status = StatusStepLimit
	}
	v.finish()
	return v.res, nil
}

func (v *VM) finish() {
	if v.opts.Watchdog && v.res.Status == StatusStepLimit {
		v.res.Livelock = v.diagnoseLivelock()
	}
	for _, t := range v.threads {
		v.res.ThreadCycles = append(v.res.ThreadCycles, t.cycles)
		if t.cycles > v.res.MaxCycles {
			v.res.MaxCycles = t.cycles
		}
		v.res.TotalCycles += t.cycles
		if t.entry {
			v.res.Returns = append(v.res.Returns, t.retVal)
		}
	}
	if p := v.opts.Obs; p != nil {
		p.Counter("vm.executions_completed").Inc()
		p.Counter("vm.steps_executed").Add(v.res.Steps)
		p.Histogram("vm.execution_steps").Observe(v.res.Steps)
	}
}

// StepThread executes instructions of thread index ti until a visible
// operation has executed (or the thread blocks/finishes). Used by the
// model checker to reduce scheduling choice points to visible operations.
// Internal panics are contained and returned as structured errors.
func (v *VM) StepThread(ti int) (err error) {
	defer diag.Guard("vm.StepThread", &err)
	t := v.threads[ti]
	for t.state == tRunnable && !v.halted {
		visible, err := v.exec(t)
		if err != nil {
			return err
		}
		if visible {
			return nil
		}
		if v.res.Steps >= v.opts.MaxSteps {
			v.res.Status = StatusStepLimit
			v.halted = true
		}
	}
	return nil
}

// Step executes a single instruction of t. Internal panics are
// contained and returned as structured errors.
func (v *VM) Step(t *thread) (err error) {
	defer diag.Guard("vm.Step", &err)
	_, err = v.exec(t)
	return err
}

// Threads returns the number of threads created so far.
func (v *VM) Threads() int { return len(v.threads) }

// ThreadState returns whether thread ti can currently run (after
// unblock resolution via Runnable).
func (v *VM) ThreadDone(ti int) bool { return v.threads[ti].state == tDone }

// Result returns the (possibly still accumulating) result.
func (v *VM) Result() *Result { return v.res }

// Halted reports whether execution stopped (assertion failure or step
// limit).
func (v *VM) Halted() bool { return v.halted }

func (v *VM) eval(t *thread, val ir.Value) int64 {
	switch x := val.(type) {
	case *ir.ConstInt:
		return x.V
	case *ir.Global:
		return int64(v.globals[x.GName])
	case *ir.Param:
		return t.frame().params[x.Index]
	case *ir.Instr:
		return t.frame().regs[x.ID]
	case *ir.FuncRef:
		for i, f := range v.mod.Funcs {
			if f == x.Fn {
				return int64(i)
			}
		}
	}
	// Unreachable on verified modules; the position makes watchdog and
	// fuzzer reports actionable when an unverified module slips in. The
	// panic is contained by the diag guard at the public entry points.
	f := t.frame()
	ip := f.ip - 1 // exec has already advanced past the current instruction
	pos := fmt.Sprintf("@%s %%%s", f.fn.Name, f.blk.Name)
	if ip >= 0 && ip < len(f.blk.Instrs) {
		pos = fmt.Sprintf("%s #%d: %s", pos, ip, f.blk.Instrs[ip])
	}
	panic(fmt.Sprintf("vm: cannot evaluate %T (thread %d, %s)", val, t.id, pos))
}

// exec runs one instruction; it reports whether the instruction was
// visible (touches shared memory or synchronizes threads). When
// tracing is enabled, visible operations are appended to the result's
// trace (used by the model checker to print counterexamples).
func (v *VM) exec(t *thread) (bool, error) {
	v.touch(t.id) // every instruction mutates the thread's hashed state
	var cur *ir.Instr
	if f := t.frame(); f.ip < len(f.blk.Instrs) {
		cur = f.blk.Instrs[f.ip]
	}
	var before int64
	if v.opts.Profile {
		before = t.cycles
	}
	visible, err := v.execInstr(t)
	if visible {
		t.lastVisible = v.res.Steps
	}
	if v.opts.Profile && cur != nil {
		v.res.FuncCycles[cur.Blk.Fn.Name] += t.cycles - before
	}
	if visible && v.opts.TraceVisible && cur != nil && len(v.res.Trace) < maxTraceEvents {
		v.res.Trace = append(v.res.Trace, TraceEvent{
			Thread: t.id,
			Fn:     cur.Blk.Fn.Name,
			Instr:  cur.String(),
		})
	}
	return visible, err
}

// maxTraceEvents bounds counterexample traces.
const maxTraceEvents = 4096

func (v *VM) execInstr(t *thread) (bool, error) {
	f := t.frame()
	if f.ip >= len(f.blk.Instrs) {
		return false, fmt.Errorf("vm: fell off block %%%s in @%s", f.blk.Name, f.fn.Name)
	}
	in := f.blk.Instrs[f.ip]
	f.ip++
	v.res.Steps++
	c := &v.opts.Costs
	switch in.Op {
	case ir.OpAlloca:
		cells := in.AllocElem.Cells()
		addr := t.stackNext
		t.stackNext += memmodel.Addr(cells)
		if t.stackNext > memmodel.Addr(stackBase+t.id*stackSize+stackSize) {
			return false, fmt.Errorf("vm: stack overflow in @%s", f.fn.Name)
		}
		for i := 0; i < cells; i++ {
			v.mem.rawset(addr+memmodel.Addr(i), 0)
		}
		f.regs[in.ID] = int64(addr)
		t.cycles += c.Arith
		return false, nil

	case ir.OpLoad:
		a := memmodel.Addr(v.eval(t, in.Args[0]))
		val, rts := v.mem.load(t, a, in.Ord)
		f.regs[in.ID] = val
		v.chargeLoad(t, a, c.accessCost(in.Ord, false), in.Ord.Atomic() && in.Ord != ir.Relaxed)
		if in.Ord.Atomic() {
			v.res.Counters.AtomicLoads++
		} else {
			v.res.Counters.NonAtomicLoads++
		}
		if v.hook != nil && !isStackAddr(a) {
			v.hookAccess(t, a, AccessLoad, in, rts, -1)
		}
		return !t.ownStack(a), nil

	case ir.OpStore:
		a := memmodel.Addr(v.eval(t, in.Args[0]))
		val := v.eval(t, in.Args[1])
		wts := v.mem.store(t, a, val, in.Ord)
		v.chargeWrite(t, a, in.Ord.Atomic(), c.accessCost(in.Ord, true))
		if in.Ord.Atomic() {
			v.res.Counters.AtomicStores++
		} else {
			v.res.Counters.NonAtomicStores++
		}
		if v.hook != nil && !isStackAddr(a) {
			v.hookAccess(t, a, AccessStore, in, -1, wts)
		}
		return !t.ownStack(a), nil

	case ir.OpCmpXchg:
		a := memmodel.Addr(v.eval(t, in.Args[0]))
		exp := v.eval(t, in.Args[1])
		nv := v.eval(t, in.Args[2])
		old, swapped, rts, wts := v.mem.cmpxchg(t, a, exp, nv, in.Ord)
		f.regs[in.ID] = old
		v.chargeWrite(t, a, true, c.RMW)
		v.res.Counters.RMWs++
		if v.hook != nil && !isStackAddr(a) {
			kind := AccessRMW
			if !swapped {
				kind = AccessCasFail
			}
			v.hookAccess(t, a, kind, in, rts, wts)
		}
		return true, nil

	case ir.OpRMW:
		a := memmodel.Addr(v.eval(t, in.Args[0]))
		operand := v.eval(t, in.Args[1])
		old, rts, wts := v.mem.rmw(t, a, rmwFunc(in.RMW, operand), in.Ord)
		f.regs[in.ID] = old
		v.chargeWrite(t, a, true, c.RMW)
		v.res.Counters.RMWs++
		if v.hook != nil && !isStackAddr(a) {
			v.hookAccess(t, a, AccessRMW, in, rts, wts)
		}
		return true, nil

	case ir.OpFence:
		v.mem.fence(t, in.Ord)
		if v.hook != nil {
			v.hook.OnFence(t.id, in.Ord)
		}
		if in.Ord == ir.SeqCst {
			t.cycles += c.FenceSC
		} else {
			t.cycles += c.FenceWeak
		}
		if t.dirtyShared {
			t.cycles += c.FenceDrain
			t.dirtyShared = false
		}
		if t.dirtyHot {
			t.cycles += c.FenceDrainHot
			t.dirtyHot = false
		}
		v.res.Counters.Fences++
		return true, nil

	case ir.OpBin:
		x, y := v.eval(t, in.Args[0]), v.eval(t, in.Args[1])
		r, err := binOp(in.BinKind, x, y)
		if err != nil {
			return false, fmt.Errorf("vm: @%s: %w", f.fn.Name, err)
		}
		f.regs[in.ID] = r
		t.cycles += c.Arith
		return false, nil

	case ir.OpICmp:
		x, y := v.eval(t, in.Args[0]), v.eval(t, in.Args[1])
		f.regs[in.ID] = icmp(in.Pred, x, y)
		t.cycles += c.Arith
		return false, nil

	case ir.OpGEP:
		f.regs[in.ID] = v.gepAddr(t, in)
		t.cycles += c.Arith
		return false, nil

	case ir.OpCall:
		return v.call(t, in)

	case ir.OpBr:
		t.cycles += c.Arith
		target := in.Then
		if in.Else != nil && v.eval(t, in.Args[0]) == 0 {
			target = in.Else
		}
		f.blk = target
		f.ip = 0
		if t.blockEntries != nil {
			t.blockEntries[target]++
		}
		return false, nil

	case ir.OpRet:
		var rv int64
		if len(in.Args) == 1 {
			rv = v.eval(t, in.Args[0])
		}
		t.cycles += c.Call
		return v.doReturn(t, rv), nil
	}
	return false, fmt.Errorf("vm: unhandled op %s", in.Op)
}

func (v *VM) doReturn(t *thread, rv int64) bool {
	f := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		t.retVal = rv
		t.state = tDone
		v.framePool = append(v.framePool, f)
		return true // thread completion is visible (join/deadlock logic)
	}
	// Stack space is reused across calls; stack addresses live in flat
	// storage in both memory modes (view mode routes them to a flat side
	// store), so no stale message history can leak between frames.
	t.stackNext = f.savedStack
	caller := t.frame()
	if f.callInstr != nil {
		caller.regs[f.callInstr.ID] = rv
	}
	v.framePool = append(v.framePool, f)
	return false
}

func (v *VM) gepAddr(t *thread, in *ir.Instr) int64 {
	base := v.eval(t, in.Args[0])
	off := int64(0)
	ty := in.GEPBase
	dyn := 1
	for _, st := range in.Path {
		if st.Field >= 0 {
			s := ty.(*ir.StructType)
			off += int64(s.FieldOffset(st.Field))
			ty = s.Fields[st.Field].Type
			continue
		}
		idx := v.eval(t, in.Args[dyn])
		dyn++
		if at, ok := ty.(*ir.ArrayType); ok {
			off += idx * int64(at.Elem.Cells())
			ty = at.Elem
		} else {
			off += idx * int64(ty.Cells())
		}
	}
	return base + off
}

func binOp(k ir.BinKind, x, y int64) (int64, error) {
	switch k {
	case ir.Add:
		return x + y, nil
	case ir.Sub:
		return x - y, nil
	case ir.Mul:
		return x * y, nil
	case ir.Div:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case ir.Rem:
		if y == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return x % y, nil
	case ir.And:
		return x & y, nil
	case ir.Or:
		return x | y, nil
	case ir.Xor:
		return x ^ y, nil
	case ir.Shl:
		return x << uint(y&63), nil
	case ir.Shr:
		return x >> uint(y&63), nil
	}
	return 0, fmt.Errorf("unknown binary op %d", k)
}

func icmp(p ir.Pred, x, y int64) int64 {
	var b bool
	switch p {
	case ir.EQ:
		b = x == y
	case ir.NE:
		b = x != y
	case ir.LT:
		b = x < y
	case ir.LE:
		b = x <= y
	case ir.GT:
		b = x > y
	case ir.GE:
		b = x >= y
	}
	if b {
		return 1
	}
	return 0
}

func rmwFunc(k ir.RMWKind, operand int64) func(int64) int64 {
	switch k {
	case ir.RMWAdd:
		return func(v int64) int64 { return v + operand }
	case ir.RMWSub:
		return func(v int64) int64 { return v - operand }
	case ir.RMWAnd:
		return func(v int64) int64 { return v & operand }
	case ir.RMWOr:
		return func(v int64) int64 { return v | operand }
	case ir.RMWXor:
		return func(v int64) int64 { return v ^ operand }
	default: // RMWXchg
		return func(int64) int64 { return operand }
	}
}

// Snapshot returns the final value of every global, cell by cell — the
// schedule-independent part of a terminated execution's state. The
// differential harness compares snapshots across memory models and
// scheduler modes.
func (v *VM) Snapshot() map[string][]int64 {
	out := make(map[string][]int64, len(v.mod.Globals))
	for _, g := range v.mod.Globals {
		base := v.globals[g.GName]
		cells := make([]int64, g.Elem.Cells())
		for i := range cells {
			cells[i] = v.mem.final(base + memmodel.Addr(i))
		}
		out[g.GName] = cells
	}
	return out
}
