package vm

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// StateHash returns a hash of the complete execution state: every
// thread's control state, register file and memory view, plus the
// shared-memory contents. The model checker prunes re-visited states,
// which in particular collapses spinloop iterations that observed no
// change (the state after a failed spin retry equals the state before
// it).
func (v *VM) StateHash() uint64 {
	buf := make([]byte, 0, 1024)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v.threads)))
	for _, t := range v.threads {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.state))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.barrierN))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.stackNext))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.frames)))
		for _, fr := range t.frames {
			buf = append(buf, fr.fn.Name...)
			buf = append(buf, 0)
			buf = append(buf, fr.blk.Name...)
			buf = append(buf, 0)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(fr.ip))
			for _, r := range fr.regs {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(r))
			}
			for _, p := range fr.params {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(p))
			}
		}
		if t.mm != nil {
			buf = t.mm.View.AppendState(buf)
		}
	}
	switch mem := v.mem.(type) {
	case *viewMem:
		buf = mem.mc.AppendState(buf)
		buf = appendFlat(buf, mem.stack)
	case *flatMem:
		buf = appendFlat(buf, mem)
	}
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum64()
}

func appendFlat(buf []byte, mem *flatMem) []byte {
	addrs := make([]uint64, 0, len(mem.cells))
	for a, val := range mem.cells {
		if val != 0 {
			addrs = append(addrs, uint64(a))
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		buf = binary.LittleEndian.AppendUint64(buf, a)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(mem.cells[memAddr(a)]))
	}
	return buf
}
