package vm

import (
	"encoding/binary"
	"hash/fnv"
)

// StateHash returns a hash of the complete execution state: every
// thread's control state, register file and memory view, plus the
// shared-memory contents. The model checker prunes re-visited states,
// which in particular collapses spinloop iterations that observed no
// change (the state after a failed spin retry equals the state before
// it).
//
// The hash is incremental: per-thread component hashes are cached and
// recomputed only for threads marked dirty since the last call (the
// stepping thread, spawn children, barrier releases, join resolution),
// and the memory backends maintain their contribution as mutations
// happen (memmodel.Machine.StateAcc, flatMem.acc). Between two visible
// steps only one or two threads move, so the per-step cost drops from
// serializing the full state to serializing one thread.
func (v *VM) StateHash() uint64 {
	h := uint64(14695981039346656037)
	for i, t := range v.threads {
		if v.threadDirty[i] {
			v.threadHash[i] = v.hashThread(t)
			v.threadDirty[i] = false
		}
		h = h*1099511628211 ^ v.threadHash[i]
	}
	return h*1099511628211 ^ v.mem.stateAcc()
}

// touch marks thread ti's cached component hash stale. Every mutation
// site of thread-visible state must call it: instruction execution,
// spawn (the child), barrier release (each participant), and the join
// resolution in Runnable.
func (v *VM) touch(ti int) { v.threadDirty[ti] = true }

// hashThread serializes one thread's control state, frames and memory
// view into the reusable buffer and hashes it.
func (v *VM) hashThread(t *thread) uint64 {
	buf := v.hashBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.state))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.barrierN))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.stackNext))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.frames)))
	for _, fr := range t.frames {
		buf = append(buf, fr.fn.Name...)
		buf = append(buf, 0)
		buf = append(buf, fr.blk.Name...)
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(fr.ip))
		for _, r := range fr.regs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r))
		}
		for _, p := range fr.params {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p))
		}
	}
	if t.mm != nil {
		buf = binary.LittleEndian.AppendUint64(buf, t.mm.View.StateHash())
	}
	v.hashBuf = buf
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum64()
}
