package vm

import (
	"repro/internal/ir"
	"repro/internal/memmodel"
)

// AccessKind classifies a dynamic shared-memory operation reported to a
// Hook.
type AccessKind int

// Access kinds.
const (
	// AccessLoad is a load instruction.
	AccessLoad AccessKind = iota
	// AccessStore is a store instruction.
	AccessStore
	// AccessRMW is a successful read-modify-write (atomicrmw, or a
	// cmpxchg whose comparison matched): one atomic read plus one write.
	AccessRMW
	// AccessCasFail is a cmpxchg whose comparison failed: the read
	// happened, no write did.
	AccessCasFail
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessRMW:
		return "rmw"
	case AccessCasFail:
		return "cas-fail"
	}
	return "access?"
}

// AccessEvent describes one dynamic shared-memory operation. Events are
// reported only for shared addresses (globals and heap); thread stacks
// are private by construction (the view machine routes them to a flat
// side store) and never appear.
type AccessEvent struct {
	// Thread is the executing thread's index.
	Thread int
	// Addr is the cell address accessed.
	Addr memmodel.Addr
	// Kind classifies the operation.
	Kind AccessKind
	// Ord is the static memory ordering of the instruction; observers
	// map it to the model's effective ordering themselves
	// (memmodel.EffectiveOrd / memmodel.RMWOrd).
	Ord ir.MemOrder
	// ReadTS is the view-machine timestamp of the message read (loads,
	// RMWs); -1 when no read happened or the flat backend is in use.
	ReadTS int
	// WriteTS is the view-machine timestamp of the message written
	// (stores, successful RMWs); -1 when no write happened or the flat
	// backend is in use.
	WriteTS int
	// Instr is the access site (provenance: Instr.Blk and Instr.Blk.Fn
	// identify the block and function).
	Instr *ir.Instr
}

// Hook observes an execution's synchronization-relevant events. All
// methods are called synchronously on the executing goroutine, in
// program order per thread. A nil Options.Hook costs a single pointer
// check per event site; instrumentation is otherwise zero-cost.
type Hook interface {
	// OnAccess reports a shared-memory access.
	OnAccess(ev AccessEvent)
	// OnFence reports a fence instruction with its static ordering.
	OnFence(thread int, ord ir.MemOrder)
	// OnSpawn reports thread creation; the child inherits the parent's
	// synchronization state.
	OnSpawn(parent, child int)
	// OnJoin reports that thread t synchronized with finished thread
	// joined (the join() builtin, once per finished thread).
	OnJoin(t, joined int)
	// OnBarrier reports a barrier release synchronizing all
	// participants with one another.
	OnBarrier(participants []int)
}

// hookAccess reports a shared access when a hook is installed. The
// caller guarantees v.hook != nil checks stay on the fast path — this
// helper is only reached behind them.
func (v *VM) hookAccess(t *thread, a memmodel.Addr, kind AccessKind, in *ir.Instr, rts, wts int) {
	v.hook.OnAccess(AccessEvent{
		Thread: t.id, Addr: a, Kind: kind, Ord: in.Ord,
		ReadTS: rts, WriteTS: wts, Instr: in,
	})
}
