package vm

import (
	"repro/internal/ir"
	"repro/internal/memmodel"
)

// memory abstracts the VM's shared-memory backend. Performance runs use
// a flat sequentially consistent store (weak behaviors are irrelevant to
// the cycle model and message histories would grow without bound);
// model checking and weak-behavior demonstrations use the view machine.
type memory interface {
	load(t *thread, a memmodel.Addr, ord ir.MemOrder) int64
	store(t *thread, a memmodel.Addr, v int64, ord ir.MemOrder)
	cmpxchg(t *thread, a memmodel.Addr, expected, nv int64, ord ir.MemOrder) (int64, bool)
	rmw(t *thread, a memmodel.Addr, f func(int64) int64, ord ir.MemOrder) int64
	fence(t *thread, ord ir.MemOrder)
	setInit(a memmodel.Addr, v int64)
	// rawset writes without memory-model effects (alloca zeroing).
	rawset(a memmodel.Addr, v int64)
	// final reads the newest value at a without memory-model effects
	// (final-state snapshots for the differential harness).
	final(a memmodel.Addr) int64
}

// flatMem is the fast sequentially consistent backend.
type flatMem struct {
	cells map[memmodel.Addr]int64
}

func newFlatMem() *flatMem { return &flatMem{cells: make(map[memmodel.Addr]int64)} }

func (m *flatMem) load(_ *thread, a memmodel.Addr, _ ir.MemOrder) int64 { return m.cells[a] }

func (m *flatMem) store(_ *thread, a memmodel.Addr, v int64, _ ir.MemOrder) { m.cells[a] = v }

func (m *flatMem) cmpxchg(_ *thread, a memmodel.Addr, expected, nv int64, _ ir.MemOrder) (int64, bool) {
	old := m.cells[a]
	if old != expected {
		return old, false
	}
	m.cells[a] = nv
	return old, true
}

func (m *flatMem) rmw(_ *thread, a memmodel.Addr, f func(int64) int64, _ ir.MemOrder) int64 {
	old := m.cells[a]
	m.cells[a] = f(old)
	return old
}

func (m *flatMem) fence(_ *thread, _ ir.MemOrder) {}

func (m *flatMem) setInit(a memmodel.Addr, v int64) { m.cells[a] = v }

func (m *flatMem) rawset(a memmodel.Addr, v int64) { m.cells[a] = v }

func (m *flatMem) final(a memmodel.Addr) int64 { return m.cells[a] }

// viewMem adapts the memmodel view machine to the VM memory interface.
// Thread-stack addresses are routed to a flat side store: stack slots
// are thread-local (the corpus shares data via globals and the heap
// only), so modelling weak behavior on them would just bloat message
// histories — a store per spinloop iteration would make every loop
// state distinct and defeat the model checker's visited-state pruning.
type viewMem struct {
	mc    *memmodel.Machine
	model memmodel.Model
	stack *flatMem
}

func newViewMem(model memmodel.Model, oracle memmodel.ReadOracle) *viewMem {
	return &viewMem{
		mc:    memmodel.NewMachine(model, oracle),
		model: model,
		stack: newFlatMem(),
	}
}

func isStackAddr(a memmodel.Addr) bool { return a >= stackBase }

func (m *viewMem) eff(ord ir.MemOrder, isStore bool) memmodel.AccessOrd {
	return memmodel.EffectiveOrd(m.model, int(ord), isStore)
}

func (m *viewMem) load(t *thread, a memmodel.Addr, ord ir.MemOrder) int64 {
	if isStackAddr(a) {
		return m.stack.load(t, a, ord)
	}
	return m.mc.Load(t.mm, a, m.eff(ord, false))
}

func (m *viewMem) store(t *thread, a memmodel.Addr, v int64, ord ir.MemOrder) {
	if isStackAddr(a) {
		m.stack.store(t, a, v, ord)
		return
	}
	m.mc.Store(t.mm, a, v, m.eff(ord, true))
}

// rmwOrd maps a static RMW ordering under the model: on TSO (x86 lock
// prefix) and SC machines read-modify-writes are full barriers.
func (m *viewMem) rmwOrd(ord ir.MemOrder) memmodel.AccessOrd {
	if m.model != memmodel.ModelWMM {
		return memmodel.OrdSC
	}
	return m.eff(ord, true)
}

func (m *viewMem) cmpxchg(t *thread, a memmodel.Addr, expected, nv int64, ord ir.MemOrder) (int64, bool) {
	if isStackAddr(a) {
		return m.stack.cmpxchg(t, a, expected, nv, ord)
	}
	r := m.mc.CmpXchg(t.mm, a, expected, nv, m.rmwOrd(ord))
	return r.Old, r.Swapped
}

func (m *viewMem) rmw(t *thread, a memmodel.Addr, f func(int64) int64, ord ir.MemOrder) int64 {
	if isStackAddr(a) {
		return m.stack.rmw(t, a, f, ord)
	}
	return m.mc.RMW(t.mm, a, f, m.rmwOrd(ord))
}

func (m *viewMem) fence(t *thread, ord ir.MemOrder) { m.mc.Fence(t.mm, int(ord)) }

func (m *viewMem) setInit(a memmodel.Addr, v int64) {
	if isStackAddr(a) {
		m.stack.setInit(a, v)
		return
	}
	m.mc.SetInit(a, v)
}

func (m *viewMem) rawset(a memmodel.Addr, v int64) {
	if isStackAddr(a) {
		m.stack.rawset(a, v)
		return
	}
	m.mc.SetInit(a, v)
}

func (m *viewMem) final(a memmodel.Addr) int64 {
	if isStackAddr(a) {
		return m.stack.final(a)
	}
	return m.mc.Final(a)
}

// memAddr converts a raw uint64 to the address type (hash helper).
func memAddr(a uint64) memmodel.Addr { return memmodel.Addr(a) }
