package vm

import (
	"repro/internal/ir"
	"repro/internal/memmodel"
)

// memory abstracts the VM's shared-memory backend. Performance runs use
// a flat sequentially consistent store (weak behaviors are irrelevant to
// the cycle model and message histories would grow without bound);
// model checking and weak-behavior demonstrations use the view machine.
//
// The load/store/cmpxchg/rmw methods additionally report the
// view-machine timestamps of the messages read and written (-1 when the
// flat backend is in use or no message was involved); the event-hook
// instrumentation uses them to follow reads-from edges precisely.
type memory interface {
	load(t *thread, a memmodel.Addr, ord ir.MemOrder) (int64, int)
	store(t *thread, a memmodel.Addr, v int64, ord ir.MemOrder) int
	cmpxchg(t *thread, a memmodel.Addr, expected, nv int64, ord ir.MemOrder) (int64, bool, int, int)
	rmw(t *thread, a memmodel.Addr, f func(int64) int64, ord ir.MemOrder) (int64, int, int)
	fence(t *thread, ord ir.MemOrder)
	setInit(a memmodel.Addr, v int64)
	// rawset writes without memory-model effects (alloca zeroing).
	rawset(a memmodel.Addr, v int64)
	// final reads the newest value at a without memory-model effects
	// (final-state snapshots for the differential harness).
	final(a memmodel.Addr) int64
	// reset restores the backend to its empty initial state, keeping
	// allocations (VM reuse across model-checker executions).
	reset()
	// stateAcc returns the incrementally maintained hash of the memory
	// contents (the memory contribution to VM.StateHash).
	stateAcc() uint64
}

// flatMem is the fast sequentially consistent backend. acc is the
// incrementally maintained state hash: the XOR of a mixed (addr, value)
// pair per nonzero cell, updated in set as cells change.
type flatMem struct {
	cells map[memmodel.Addr]int64
	acc   uint64
}

func newFlatMem() *flatMem { return &flatMem{cells: make(map[memmodel.Addr]int64)} }

// cellHash mixes one nonzero cell into a well-distributed 64-bit value
// so the XOR multiset combine in flatMem.acc is collision-resistant.
func cellHash(a memmodel.Addr, v int64) uint64 {
	return memmodel.Mix64(uint64(a)*0x9e3779b97f4a7c15 ^ uint64(v))
}

// set writes a cell and maintains the incremental hash. Zero-valued
// cells contribute nothing, matching the canonical "hash of nonzero
// cells" semantics regardless of whether a zero is stored explicitly.
func (m *flatMem) set(a memmodel.Addr, v int64) {
	old := m.cells[a]
	if old == v {
		return
	}
	if old != 0 {
		m.acc ^= cellHash(a, old)
	}
	if v != 0 {
		m.acc ^= cellHash(a, v)
	}
	m.cells[a] = v
}

func (m *flatMem) load(_ *thread, a memmodel.Addr, _ ir.MemOrder) (int64, int) {
	return m.cells[a], -1
}

func (m *flatMem) store(_ *thread, a memmodel.Addr, v int64, _ ir.MemOrder) int {
	m.set(a, v)
	return -1
}

func (m *flatMem) cmpxchg(_ *thread, a memmodel.Addr, expected, nv int64, _ ir.MemOrder) (int64, bool, int, int) {
	old := m.cells[a]
	if old != expected {
		return old, false, -1, -1
	}
	m.set(a, nv)
	return old, true, -1, -1
}

func (m *flatMem) rmw(_ *thread, a memmodel.Addr, f func(int64) int64, _ ir.MemOrder) (int64, int, int) {
	old := m.cells[a]
	m.set(a, f(old))
	return old, -1, -1
}

func (m *flatMem) fence(_ *thread, _ ir.MemOrder) {}

func (m *flatMem) setInit(a memmodel.Addr, v int64) { m.set(a, v) }

func (m *flatMem) rawset(a memmodel.Addr, v int64) { m.set(a, v) }

func (m *flatMem) final(a memmodel.Addr) int64 { return m.cells[a] }

func (m *flatMem) reset() {
	clear(m.cells)
	m.acc = 0
}

func (m *flatMem) stateAcc() uint64 { return m.acc }

// viewMem adapts the memmodel view machine to the VM memory interface.
// Thread-stack addresses are routed to a flat side store: stack slots
// are thread-local (the corpus shares data via globals and the heap
// only), so modelling weak behavior on them would just bloat message
// histories — a store per spinloop iteration would make every loop
// state distinct and defeat the model checker's visited-state pruning.
type viewMem struct {
	mc    *memmodel.Machine
	model memmodel.Model
	stack *flatMem
}

func newViewMem(model memmodel.Model, oracle memmodel.ReadOracle) *viewMem {
	return &viewMem{
		mc:    memmodel.NewMachine(model, oracle),
		model: model,
		stack: newFlatMem(),
	}
}

func isStackAddr(a memmodel.Addr) bool { return a >= stackBase }

func (m *viewMem) eff(ord ir.MemOrder, isStore bool) memmodel.AccessOrd {
	return memmodel.EffectiveOrd(m.model, int(ord), isStore)
}

func (m *viewMem) load(t *thread, a memmodel.Addr, ord ir.MemOrder) (int64, int) {
	if isStackAddr(a) {
		return m.stack.load(t, a, ord)
	}
	return m.mc.LoadT(t.mm, a, m.eff(ord, false))
}

func (m *viewMem) store(t *thread, a memmodel.Addr, v int64, ord ir.MemOrder) int {
	if isStackAddr(a) {
		return m.stack.store(t, a, v, ord)
	}
	return m.mc.StoreT(t.mm, a, v, m.eff(ord, true))
}

func (m *viewMem) cmpxchg(t *thread, a memmodel.Addr, expected, nv int64, ord ir.MemOrder) (int64, bool, int, int) {
	if isStackAddr(a) {
		return m.stack.cmpxchg(t, a, expected, nv, ord)
	}
	r := m.mc.CmpXchg(t.mm, a, expected, nv, memmodel.RMWOrd(m.model, int(ord)))
	return r.Old, r.Swapped, r.ReadTS, r.WriteTS
}

func (m *viewMem) rmw(t *thread, a memmodel.Addr, f func(int64) int64, ord ir.MemOrder) (int64, int, int) {
	if isStackAddr(a) {
		return m.stack.rmw(t, a, f, ord)
	}
	r := m.mc.RMWT(t.mm, a, f, memmodel.RMWOrd(m.model, int(ord)))
	return r.Old, r.ReadTS, r.WriteTS
}

func (m *viewMem) fence(t *thread, ord ir.MemOrder) { m.mc.Fence(t.mm, int(ord)) }

func (m *viewMem) setInit(a memmodel.Addr, v int64) {
	if isStackAddr(a) {
		m.stack.setInit(a, v)
		return
	}
	m.mc.SetInit(a, v)
}

func (m *viewMem) rawset(a memmodel.Addr, v int64) {
	if isStackAddr(a) {
		m.stack.rawset(a, v)
		return
	}
	m.mc.SetInit(a, v)
}

func (m *viewMem) final(a memmodel.Addr) int64 {
	if isStackAddr(a) {
		return m.stack.final(a)
	}
	return m.mc.Final(a)
}

func (m *viewMem) reset() {
	m.mc.Reset()
	m.stack.reset()
}

// stateAcc combines the view machine's incremental hash with the stack
// side store's. The two accumulators hash disjoint address ranges with
// different mixers, so a plain XOR cannot cancel across them.
func (m *viewMem) stateAcc() uint64 { return m.mc.StateAcc() ^ m.stack.acc }
