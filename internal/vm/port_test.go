package vm_test

// External test package: it exercises the vm through the atomig
// pipeline, and atomig (via the race detector's explain path) imports
// vm, so an in-package test would be an import cycle.

import (
	"testing"

	"repro/internal/atomig"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/vm"
)

// TestMessagePassingWeakness is the executable version of Figure 1: the
// unported MP program fails under WMM for some schedules/read choices,
// while the atomig-ported version never does.
func TestMessagePassingWeakness(t *testing.T) {
	src := `
int flag;
int msg;
void writer(void) {
  msg = 1;
  flag = 1;
}
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := res.Module
	const seeds = 200
	fails := 0
	for seed := int64(0); seed < seeds; seed++ {
		r, err := vm.Run(m, vm.Options{
			Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
			Seed: seed, MaxSteps: 100_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status == vm.StatusAssertFailed {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("original MP never failed under WMM; the weak model is not weak")
	}

	ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < seeds; seed++ {
		r, err := vm.Run(ported, vm.Options{
			Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
			Seed: seed, MaxSteps: 100_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status == vm.StatusAssertFailed {
			t.Fatalf("ported MP failed under WMM at seed %d", seed)
		}
	}
}
