package vm

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/memmodel"
)

// Scheduler is the pluggable nondeterminism resolver of an execution.
// It is an alias of Controller: the model checker plugs an exhaustive
// replay controller in through the same seam the fault-injection
// schedulers below use.
type Scheduler = Controller

// SchedMode selects one of the seed-driven fault-injection scheduling
// strategies. The adversarial modes are inspired by C11Tester-style
// biased exploration: random scheduling almost never exhibits the rare
// interleavings where weak-memory bugs live, so the stress harness runs
// every program under each mode.
type SchedMode int

// Scheduling modes.
const (
	// SchedRandom is the uniform seeded baseline (RandomController).
	SchedRandom SchedMode = iota
	// SchedStarve starves one victim thread: the victim only runs when
	// it is the sole runnable thread or with small probability. This
	// stretches the windows between a writer's store and the reader
	// observing it.
	SchedStarve
	// SchedDelay delays store-buffer drains: weak reads prefer stale
	// messages, modelling writes that linger unflushed for as long as
	// the model allows.
	SchedDelay
	// SchedReorder pessimizes the reorder window: every weak read picks
	// uniformly among all eligible messages and threads advance
	// round-robin, maximizing the visible-reorder surface per step.
	SchedReorder
	// SchedBurst runs threads in long preemption-free bursts with
	// abrupt switches, the pattern that exposes missing fences at
	// publication boundaries (one thread completes a whole critical
	// region while another observes it mid-flight).
	SchedBurst
)

// AllSchedModes returns every mode, for stress sweeps.
func AllSchedModes() []SchedMode {
	return []SchedMode{SchedRandom, SchedStarve, SchedDelay, SchedReorder, SchedBurst}
}

func (m SchedMode) String() string {
	switch m {
	case SchedRandom:
		return "random"
	case SchedStarve:
		return "starve"
	case SchedDelay:
		return "delay"
	case SchedReorder:
		return "reorder"
	case SchedBurst:
		return "burst"
	}
	return fmt.Sprintf("SchedMode(%d)", int(m))
}

// ParseSchedMode parses a mode name as accepted by the CLIs' -sched
// flag.
func ParseSchedMode(s string) (SchedMode, error) {
	for _, m := range AllSchedModes() {
		if s == m.String() {
			return m, nil
		}
	}
	names := make([]string, 0, len(AllSchedModes()))
	for _, m := range AllSchedModes() {
		names = append(names, m.String())
	}
	return 0, fmt.Errorf("unknown scheduler mode %q (want %s)", s, strings.Join(names, ", "))
}

// GridSeed derives the scheduler seed for one cell of a (mode, seed)
// sweep grid from a base seed. Sweeps (race.Sweep, difftest, the stress
// engine) must not hand the same RNG seed to two grid cells: two
// schedulers of the same mode seeded identically replay the same
// schedule, so a grid that recycles seed values across modes or workers
// silently halves its coverage while reporting the full execution
// count. GridSeed is a pure function of (base, mode, seed) — no
// per-worker state — so the derived seed set is identical for every
// worker count and partitioning, and a splitmix64-style finalizer
// spreads the cells across the full 64-bit space (collisions between
// distinct cells are 2^-64 events; TestGridSeedDistinct pins
// distinctness over the grids the sweeps actually use).
func GridSeed(base int64, mode SchedMode, seed int64) int64 {
	x := uint64(base)
	x = splitmix(x + 0x9e3779b97f4a7c15*uint64(mode+1))
	x = splitmix(x + uint64(seed))
	if x == 0 {
		x = 0x9e3779b97f4a7c15 // rand.NewSource(0) is valid but keep seeds nonzero for legibility
	}
	return int64(x)
}

// splitmix is the splitmix64 finalizer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewScheduler returns the seeded scheduler for the mode. The same
// (mode, seed) pair always produces the same decision sequence.
func NewScheduler(mode SchedMode, seed int64) Scheduler {
	rng := rand.New(rand.NewSource(seed))
	switch mode {
	case SchedStarve:
		return &starveScheduler{rng: rng}
	case SchedDelay:
		return &delayScheduler{rng: rng}
	case SchedReorder:
		return &reorderScheduler{rng: rng}
	case SchedBurst:
		return &burstScheduler{rng: rng}
	default:
		return NewRandomController(seed)
	}
}

// starveScheduler starves one victim thread; the victim rotates
// occasionally so every thread takes a turn being the one that never
// gets the CPU.
type starveScheduler struct {
	rng    *rand.Rand
	victim int
	picks  int
	maxID  int
}

func (s *starveScheduler) PickThread(runnable []int) int {
	s.picks++
	if s.picks%4096 == 0 {
		s.victim++ // rotate the starved thread
	}
	for _, ti := range runnable {
		if ti > s.maxID {
			s.maxID = ti
		}
	}
	if len(runnable) == 1 {
		return runnable[0]
	}
	victim := s.victim % (s.maxID + 1)
	// With probability 1/64 the victim sneaks a step in anyway, so
	// starvation stretches windows without deterministically livelocking
	// two-sided protocols.
	if s.rng.Intn(64) == 0 {
		return runnable[s.rng.Intn(len(runnable))]
	}
	others := make([]int, 0, len(runnable))
	for _, ti := range runnable {
		if ti != victim {
			others = append(others, ti)
		}
	}
	if len(others) == 0 {
		return runnable[s.rng.Intn(len(runnable))]
	}
	return others[s.rng.Intn(len(others))]
}

func (s *starveScheduler) PickRead(_ memmodel.Addr, eligible []int) int {
	return len(eligible) - 1
}

func (s *starveScheduler) PickNondet(max int) int { return s.rng.Intn(max) }

// delayScheduler keeps weak reads on stale messages: half the reads take
// the oldest eligible message, a quarter a random one, the rest the
// newest. Forward progress is preserved (the newest value is seen with
// probability 1 over time) while stale windows last far longer than
// under the baseline's newest-biased oracle.
type delayScheduler struct{ rng *rand.Rand }

func (s *delayScheduler) PickThread(runnable []int) int {
	return runnable[s.rng.Intn(len(runnable))]
}

func (s *delayScheduler) PickRead(_ memmodel.Addr, eligible []int) int {
	switch s.rng.Intn(4) {
	case 0, 1:
		return 0 // oldest eligible message
	case 2:
		return s.rng.Intn(len(eligible))
	default:
		return len(eligible) - 1
	}
}

func (s *delayScheduler) PickNondet(max int) int { return s.rng.Intn(max) }

// reorderScheduler maximizes visible reordering: threads advance
// round-robin (every thread is always mid-flight somewhere) and every
// weak read picks uniformly among all eligible messages.
type reorderScheduler struct {
	rng  *rand.Rand
	next int
}

func (s *reorderScheduler) PickThread(runnable []int) int {
	s.next++
	return runnable[s.next%len(runnable)]
}

func (s *reorderScheduler) PickRead(_ memmodel.Addr, eligible []int) int {
	return s.rng.Intn(len(eligible))
}

func (s *reorderScheduler) PickNondet(max int) int { return s.rng.Intn(max) }

// burstScheduler runs one thread for a geometric burst, then switches.
type burstScheduler struct {
	rng  *rand.Rand
	cur  int
	left int
}

func (s *burstScheduler) PickThread(runnable []int) int {
	for _, ti := range runnable {
		if ti == s.cur && s.left > 0 {
			s.left--
			return ti
		}
	}
	s.cur = runnable[s.rng.Intn(len(runnable))]
	s.left = 1 << (s.rng.Intn(9) + 2) // bursts of 8..2048 steps
	return s.cur
}

func (s *burstScheduler) PickRead(_ memmodel.Addr, eligible []int) int {
	if len(eligible) == 1 || s.rng.Intn(8) != 0 {
		return len(eligible) - 1
	}
	return s.rng.Intn(len(eligible))
}

func (s *burstScheduler) PickNondet(max int) int { return s.rng.Intn(max) }
