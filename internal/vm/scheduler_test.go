package vm

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/minic"
)

func compileSrc(t *testing.T, src string) *minic.Result {
	t.Helper()
	res, err := minic.Compile("schedtest", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

const schedMPSrc = `
int flag;
int msg;
int out;
void writer(void) { msg = 41; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  out = msg;
}
`

// TestParseSchedMode: every mode name round-trips, unknown names error.
func TestParseSchedMode(t *testing.T) {
	for _, m := range AllSchedModes() {
		got, err := ParseSchedMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseSchedMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseSchedMode("bogus"); err == nil {
		t.Error("ParseSchedMode accepted an unknown mode")
	}
	if !strings.Contains(SchedMode(99).String(), "99") {
		t.Error("out-of-range mode String() lost the value")
	}
}

// TestSchedulerDeterminism: the same (mode, seed) pair must drive an
// identical execution — same step count, same final state.
func TestSchedulerDeterminism(t *testing.T) {
	res := compileSrc(t, schedMPSrc)
	for _, mode := range AllSchedModes() {
		run := func(seed int64) (*Result, map[string][]int64) {
			v, err := New(res.Module, Options{
				Model:      memmodel.ModelSC,
				Entries:    []string{"reader", "writer"},
				Controller: NewScheduler(mode, seed),
			})
			if err != nil {
				t.Fatalf("%s: New: %v", mode, err)
			}
			out, err := v.Run()
			if err != nil {
				t.Fatalf("%s: Run: %v", mode, err)
			}
			return out, v.Snapshot()
		}
		a, snapA := run(7)
		b, snapB := run(7)
		if a.Status != StatusDone || b.Status != StatusDone {
			t.Fatalf("%s: status %s/%s", mode, a.Status, b.Status)
		}
		if a.Steps != b.Steps {
			t.Errorf("%s: steps %d != %d for the same seed", mode, a.Steps, b.Steps)
		}
		for name, want := range snapA {
			got := snapB[name]
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: %s[%d] = %d != %d for the same seed", mode, name, i, got[i], want[i])
				}
			}
		}
		if snapA["out"][0] != 41 {
			t.Errorf("%s: out = %d, want 41", mode, snapA["out"][0])
		}
	}
}

// TestWatchdogDiagnosesLivelock: a spin-wait whose signaling partner is
// never started must exhaust the step budget with a livelock report
// naming the spinning loop, cross-referenced to the spinloop detector.
func TestWatchdogDiagnosesLivelock(t *testing.T) {
	res := compileSrc(t, `
int flag;
void spin(void) {
  while (flag == 0) { }
}
`)
	out, err := Run(res.Module, Options{
		Model:    memmodel.ModelSC,
		Entries:  []string{"spin"},
		MaxSteps: 10_000,
		Watchdog: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Status != StatusStepLimit {
		t.Fatalf("status = %s, want step-limit", out.Status)
	}
	if len(out.Livelock) == 0 {
		t.Fatal("no livelock diagnosis on a step-limit halt with Watchdog set")
	}
	top := out.Livelock[0]
	if top.Fn != "spin" {
		t.Errorf("diagnosed function = %q, want spin", top.Fn)
	}
	if top.Entries < 100 {
		t.Errorf("hottest block entered %d times, expected a hot spin", top.Entries)
	}
	if !top.SpinCandidate {
		t.Error("spinning block not cross-referenced to a detected spinloop")
	}
	report := FormatLivelock(out.Livelock)
	for _, want := range []string{"livelock watchdog", "T0", "@spin", "[detected spinloop]"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestWatchdogOffByDefault: without the option, a step-limit halt has no
// livelock report (and no accounting overhead was paid).
func TestWatchdogOffByDefault(t *testing.T) {
	res := compileSrc(t, `
int flag;
void spin(void) {
  while (flag == 0) { }
}
`)
	out, err := Run(res.Module, Options{
		Model:    memmodel.ModelSC,
		Entries:  []string{"spin"},
		MaxSteps: 10_000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Status != StatusStepLimit {
		t.Fatalf("status = %s, want step-limit", out.Status)
	}
	if out.Livelock != nil {
		t.Fatal("livelock diagnosis populated without Watchdog")
	}
}

// TestStarvedThreadStillFinishes: the starvation scheduler stretches
// windows but must not deterministically livelock a two-sided protocol.
func TestStarvedThreadStillFinishes(t *testing.T) {
	res := compileSrc(t, schedMPSrc)
	for seed := int64(0); seed < 5; seed++ {
		out, err := Run(res.Module, Options{
			Model:      memmodel.ModelSC,
			Entries:    []string{"reader", "writer"},
			Controller: NewScheduler(SchedStarve, seed),
			MaxSteps:   2_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Status != StatusDone {
			t.Fatalf("seed %d: status %s", seed, out.Status)
		}
	}
}

// TestGridSeedDistinct pins GridSeed's no-recycling contract over the
// grids the stress sweeps actually use: across base seeds 1..4, every
// scheduler mode, and ordinals 1..2048, no two cells may derive the
// same scheduler seed (and none may be zero) — a recycled seed would
// replay a schedule while reporting it as fresh coverage.
func TestGridSeedDistinct(t *testing.T) {
	seen := make(map[int64][3]int64)
	for base := int64(1); base <= 4; base++ {
		for _, mode := range AllSchedModes() {
			for ord := int64(1); ord <= 2048; ord++ {
				s := GridSeed(base, mode, ord)
				if s == 0 {
					t.Fatalf("GridSeed(%d, %s, %d) = 0", base, mode, ord)
				}
				cell := [3]int64{base, int64(mode), ord}
				if prev, dup := seen[s]; dup {
					t.Fatalf("GridSeed collision: (%d, %s, %d) and (%d, %v, %d) both derive %d",
						base, mode, ord, prev[0], SchedMode(prev[1]), prev[2], s)
				}
				seen[s] = cell
			}
		}
	}
}
