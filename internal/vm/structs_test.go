package vm

import (
	"testing"

	"repro/internal/memmodel"
)

// runOutputs compiles and runs a single-threaded program, returning its
// print() outputs.
func runOutputs(t *testing.T, src string) []int64 {
	t.Helper()
	m := compile(t, src)
	res, err := Run(m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDone {
		t.Fatalf("status = %s (%s)", res.Status, res.FailMsg)
	}
	return res.Output
}

func expectOutputs(t *testing.T, src string, want ...int64) {
	t.Helper()
	got := runOutputs(t, src)
	if len(got) != len(want) {
		t.Fatalf("outputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNestedStructs(t *testing.T) {
	expectOutputs(t, `
struct inner { int a; int b; };
struct outer { int tag; struct inner in; int tail; };
struct outer o;

void main_thread(void) {
  o.tag = 1;
  o.in.a = 10;
  o.in.b = 20;
  o.tail = 99;
  print(o.tag + o.in.a + o.in.b + o.tail);
  struct outer *p = &o;
  p->in.b = 25;
  print(o.in.b);
  struct inner *q = &o.in;
  q->a = 11;
  print(o.in.a);
  print(o.tail);
}
`, 130, 25, 11, 99)
}

func TestArraysOfArrays(t *testing.T) {
	expectOutputs(t, `
int grid[3][4];

void main_thread(void) {
  for (int r = 0; r < 3; r = r + 1) {
    for (int c = 0; c < 4; c = c + 1) {
      grid[r][c] = r * 10 + c;
    }
  }
  print(grid[0][0]);
  print(grid[1][3]);
  print(grid[2][2]);
  int sum = 0;
  for (int r = 0; r < 3; r = r + 1) {
    for (int c = 0; c < 4; c = c + 1) {
      sum = sum + grid[r][c];
    }
  }
  print(sum);
}
`, 0, 13, 22, 138)
}

func TestArraysInsideStructs(t *testing.T) {
	expectOutputs(t, `
struct rec { int id; int vals[3]; int after; };
struct rec recs[2];

void main_thread(void) {
  recs[0].id = 7;
  recs[0].vals[0] = 1;
  recs[0].vals[1] = 2;
  recs[0].vals[2] = 3;
  recs[0].after = 8;
  recs[1].id = 9;
  recs[1].vals[2] = 30;
  // Adjacent fields must not overlap.
  print(recs[0].id);
  print(recs[0].vals[0] + recs[0].vals[1] + recs[0].vals[2]);
  print(recs[0].after);
  print(recs[1].id);
  print(recs[1].vals[2]);
}
`, 7, 6, 8, 9, 30)
}

func TestPointerArithmeticAndSwap(t *testing.T) {
	expectOutputs(t, `
int buf[8];

void fill(int *p, int n) {
  for (int i = 0; i < n; i = i + 1) {
    p[i] = i * i;
  }
}

void swap(int *a, int *b) {
  int t = *a;
  *a = *b;
  *b = t;
}

void main_thread(void) {
  fill(buf, 8);
  print(buf[7]);
  swap(&buf[0], &buf[7]);
  print(buf[0]);
  print(buf[7]);
  int *mid = &buf[4];
  print(mid[1]);   // buf[5]
  print(*mid);
}
`, 49, 49, 0, 25, 16)
}

func TestMutualRecursion(t *testing.T) {
	expectOutputs(t, `
int is_even(int n);

int is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}

int is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}

void main_thread(void) {
  print(is_even(10));
  print(is_odd(10));
  print(is_even(7));
}
`, 1, 0, 0)
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectOutputs(t, `
int calls;

int bump(int ret) {
  calls = calls + 1;
  return ret;
}

void main_thread(void) {
  calls = 0;
  int a = bump(0) && bump(1);  // rhs must not run
  print(a);
  print(calls);
  calls = 0;
  int b = bump(1) || bump(1);  // rhs must not run
  print(b);
  print(calls);
  calls = 0;
  int c = bump(1) && bump(0);  // both run
  print(c);
  print(calls);
}
`, 0, 1, 1, 1, 0, 2)
}

func TestGlobalStructPointerChains(t *testing.T) {
	expectOutputs(t, `
struct node { int v; struct node *next; };
struct node a;
struct node b;
struct node c;

void main_thread(void) {
  a.v = 1; b.v = 2; c.v = 3;
  a.next = &b;
  b.next = &c;
  c.next = 0;
  int sum = 0;
  struct node *p = &a;
  while (p != 0) {
    sum = sum + p->v;
    p = p->next;
  }
  print(sum);
  print(a.next->next->v);
}
`, 6, 3)
}

func TestNegativeModuloAndShifts(t *testing.T) {
	// Division/remainder follow Go (and C99) truncation semantics.
	expectOutputs(t, `
void main_thread(void) {
  print(-7 / 2);
  print(-7 % 2);
  print(7 / -2);
  print(7 % -2);
  print(1 << 10);
  print(-8 >> 1);
  print(~5);
}
`, -3, -1, -3, 1, 1024, -4, -6)
}

// TestMutualRecursionForwardDecl exercises the two-pass function
// registration: is_even is referenced before its body appears.
func TestFunctionDeclarationOrder(t *testing.T) {
	expectOutputs(t, `
void main_thread(void) {
  print(late(4));
}
int late(int x) { return x * x; }
`, 16)
}

func TestSwitchStatement(t *testing.T) {
	expectOutputs(t, `
int classify(int cmd) {
  int r = 0;
  switch (cmd) {
  case 1:
    r = 100;
    break;
  case 2:
  case 3:
    r = 200;      // 2 falls into 3's body via the empty case
    break;
  case 4:
    r = 400;      // falls through into default
  default:
    r = r + 1;
  }
  return r;
}

void main_thread(void) {
  print(classify(1));
  print(classify(2));
  print(classify(3));
  print(classify(4));
  print(classify(9));
}
`, 100, 200, 200, 401, 1)
}

func TestSwitchInsideLoop(t *testing.T) {
	expectOutputs(t, `
void main_thread(void) {
  int acc = 0;
  for (int i = 0; i < 6; i = i + 1) {
    switch (i % 3) {
    case 0:
      continue;      // continues the for loop, not the switch
    case 1:
      acc = acc + 10;
      break;
    default:
      acc = acc + 1;
    }
    acc = acc + 100;  // skipped when case 0 hit continue
  }
  print(acc);
}
`, 422)
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	expectOutputs(t, `
int g;
int arr[4];

void main_thread(void) {
  int a = 10;
  a += 5;  print(a);
  a -= 3;  print(a);
  a *= 2;  print(a);
  a /= 4;  print(a);
  a %= 4;  print(a);
  a <<= 3; print(a);
  a |= 1;  print(a);
  a &= 9;  print(a);
  a ^= 15; print(a);
  int i = 0;
  print(i++);
  print(i);
  print(++i);
  print(i--);
  print(--i);
  // Lvalue evaluated once: the index expression runs a single time.
  g = 0;
  arr[g++] += 100;
  print(arr[0]);
  print(g);
  // for-loop idiom with ++.
  int sum = 0;
  for (int k = 0; k < 5; k++) { sum += k; }
  print(sum);
}
`, 15, 12, 24, 6, 2, 16, 17, 1, 14, 0, 1, 2, 2, 0, 100, 1, 10)
}
