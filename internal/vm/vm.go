// Package vm is a deterministic multi-threaded interpreter for AIR
// modules. It executes programs under a pluggable memory-consistency
// model (see internal/memmodel), with a pluggable controller for
// scheduling and weak-read choices, and accounts execution cost with a
// barrier-aware cycle model.
//
// The VM is the testbed substitute for the paper's Armv8 server: the
// performance evaluation measures cycle-model makespans, the dynamic
// barrier census of Table 4 comes from the VM's counters, and the
// stateless model checker (internal/mc) drives the same interpreter
// with an exhaustive controller.
package vm

import (
	"fmt"
	"math/rand"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// Controller resolves all nondeterminism of an execution: which thread
// steps next, which message a weak load reads, and the values of
// nondet() inputs.
type Controller interface {
	// PickThread selects one of the runnable thread indices.
	PickThread(runnable []int) int
	// PickRead selects an index into the eligible message list of a weak
	// load.
	PickRead(addr memmodel.Addr, eligible []int) int
	// PickNondet returns a value in [0, max) for a nondet() builtin.
	PickNondet(max int) int
}

// RandomController is a seeded random controller; the default for
// performance runs and stress demos.
type RandomController struct{ Rng *rand.Rand }

// NewRandomController returns a controller seeded with seed.
func NewRandomController(seed int64) *RandomController {
	return &RandomController{Rng: rand.New(rand.NewSource(seed))}
}

// PickThread selects a uniformly random runnable thread.
func (c *RandomController) PickThread(runnable []int) int {
	return runnable[c.Rng.Intn(len(runnable))]
}

// PickRead selects the newest message with high probability and a stale
// one occasionally, mimicking how rarely weak behaviors occur on real
// hardware (the paper cites their low observed probability).
func (c *RandomController) PickRead(_ memmodel.Addr, eligible []int) int {
	if len(eligible) == 1 || c.Rng.Intn(8) != 0 {
		return len(eligible) - 1
	}
	return c.Rng.Intn(len(eligible))
}

// PickNondet returns a uniform value in [0, max).
func (c *RandomController) PickNondet(max int) int { return c.Rng.Intn(max) }

// Costs is the cycle model: the relative costs mirror the Arm barrier
// study the paper builds on (Liu et al. 2020): implicit barriers
// (load-acquire/store-release and SC atomics) are cheap when the cache
// line is local and expensive when another core owns it, while explicit
// DMB fences are unconditionally expensive. The Contended surcharge is
// charged on atomic writes (stores, cmpxchg, rmw) to cells last written
// by a different thread — the exclusive-access line transfer that store
// buffers hide for plain stores but implicit barriers expose.
type Costs struct {
	Plain       int64 // plain (and relaxed-atomic) load/store: LDR/STR
	Arith       int64 // ALU ops, branches
	AtomicLoad  int64 // acquire or seq_cst load: LDAR
	AtomicStore int64 // release or seq_cst store: STLR
	RMW         int64 // cmpxchg / atomicrmw: LDAXR/STLXR pair
	FenceSC     int64 // explicit DMB ISH, base cost (no writes to drain)
	FenceWeak   int64 // explicit DMB ISHLD / ISHST, base cost
	// FenceDrain is the extra cost of a fence when the thread has
	// written shared memory since its previous fence (the store-buffer
	// drain a DMB forces); FenceDrainHot is the additional cost when one
	// of those writes ping-ponged a cell owned by another core (the
	// drain must wait out a coherence transfer).
	FenceDrain    int64
	FenceDrainHot int64
	Call          int64 // call/return overhead
	// Contended is the surcharge for an atomic write to a cell last
	// written by another thread (exclusive line acquisition).
	Contended int64
	// ContendedLoad is the surcharge for the first atomic load of a cell
	// since another thread last wrote it (shared line fill); repeated
	// reads hit the local cache and are free of it. ContendedPlain is
	// the smaller stall a plain load suffers for the same fill (out-of-
	// order execution hides part of the miss).
	ContendedLoad  int64
	ContendedPlain int64
}

// DefaultCosts returns the standard cycle model.
func DefaultCosts() Costs {
	return Costs{
		Plain: 1, Arith: 1, AtomicLoad: 3, AtomicStore: 5,
		RMW: 8, FenceSC: 5, FenceWeak: 3, FenceDrain: 12, FenceDrainHot: 30,
		Call: 2, Contended: 14, ContendedLoad: 20, ContendedPlain: 6,
	}
}

// accessCost maps a static ordering to its cost.
func (c Costs) accessCost(ord ir.MemOrder, isStore bool) int64 {
	switch ord {
	case ir.NotAtomic, ir.Relaxed:
		return c.Plain
	default:
		if isStore {
			return c.AtomicStore
		}
		return c.AtomicLoad
	}
}

// Counters is the dynamic operation census (the paper's Table 4).
type Counters struct {
	NonAtomicLoads  int64
	NonAtomicStores int64
	AtomicLoads     int64
	AtomicStores    int64
	RMWs            int64
	Fences          int64
}

// Options configures an execution.
type Options struct {
	Model memmodel.Model
	// Entries are the functions started as the initial threads.
	Entries []string
	// Controller resolves nondeterminism; nil selects a seeded random
	// controller.
	Controller Controller
	Seed       int64
	// MaxSteps bounds the total instruction count (0 = default bound).
	MaxSteps int64
	Costs    Costs
	// TraceVisible records every visible operation in Result.Trace
	// (counterexample replay in the model checker).
	TraceVisible bool
	// Profile attributes cycle costs per function in Result.FuncCycles.
	Profile bool
	// Watchdog enables the livelock watchdog: per-thread block-entry
	// accounting while running, and a per-thread spin diagnosis in
	// Result.Livelock when the step budget is exhausted.
	Watchdog bool
	// Hook observes memory accesses, fences and thread synchronization
	// events (race detection). Nil disables instrumentation entirely;
	// every event site is behind a nil check, so a disabled hook costs
	// one predictable branch.
	Hook Hook
	// Obs, when non-nil, publishes end-of-run tallies to the metrics
	// registry (vm.executions_completed, vm.steps_executed, the
	// vm.execution_steps histogram). The interpreter loop is untouched:
	// publication happens once when the run finishes.
	Obs *obs.Provider
}

// TraceEvent is one visible operation in an execution trace.
type TraceEvent struct {
	Thread int
	Fn     string
	Instr  string
}

// Status describes how an execution ended.
type Status int

// Execution outcomes.
const (
	// StatusDone: all threads ran to completion.
	StatusDone Status = iota
	// StatusAssertFailed: an assert() builtin observed a zero argument.
	StatusAssertFailed
	// StatusDeadlock: live threads exist but none is runnable.
	StatusDeadlock
	// StatusStepLimit: the step budget was exhausted (e.g. an unbounded
	// spinloop whose partner was never scheduled).
	StatusStepLimit
)

func (s Status) String() string {
	switch s {
	case StatusDone:
		return "done"
	case StatusAssertFailed:
		return "assert-failed"
	case StatusDeadlock:
		return "deadlock"
	case StatusStepLimit:
		return "step-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Result reports an execution's outcome, counters and cost.
type Result struct {
	Status   Status
	FailMsg  string
	Steps    int64
	Counters Counters
	// ThreadCycles is the cycle-model cost per thread; MaxCycles (the
	// makespan) is the performance metric used by the benchmark harness.
	ThreadCycles []int64
	MaxCycles    int64
	TotalCycles  int64
	// Output collects print() builtin values.
	Output []int64
	// Returns holds each entry thread's return value (0 for void).
	Returns []int64
	// Trace holds the visible operations when Options.TraceVisible is
	// set, capped at maxTraceEvents.
	Trace []TraceEvent
	// FuncCycles attributes cycles per function when Options.Profile is
	// set.
	FuncCycles map[string]int64
	// Livelock is the watchdog's per-thread spin diagnosis, populated
	// when Options.Watchdog is set and Status is StatusStepLimit.
	Livelock []LivelockInfo
}

// Run executes the module's entry threads to completion under the
// options and returns the result. Internal panics (malformed modules
// that slipped past verification, interpreter bugs) are contained by
// the diag guard and returned as structured errors rather than
// crashing the caller.
func Run(m *ir.Module, opts Options) (res *Result, err error) {
	defer diag.Guard("vm.Run", &err)
	v, err := New(m, opts)
	if err != nil {
		return nil, err
	}
	return v.Run()
}
