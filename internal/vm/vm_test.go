package vm

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

func run(t *testing.T, m *ir.Module, opts Options) *Result {
	t.Helper()
	res, err := Run(m, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSequentialArithmetic(t *testing.T) {
	m := compile(t, `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main_thread(void) {
  print(fib(10));
  print(3 * 7 % 5);
  print(1 << 6);
  print(-9 / 2);
  print(255 & 15);
}
`)
	res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
	if res.Status != StatusDone {
		t.Fatalf("status = %s", res.Status)
	}
	want := []int64{55, 1, 64, -4, 15}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestStructsArraysPointers(t *testing.T) {
	m := compile(t, `
struct point { int x; int y; };
struct point grid[4];
int sum(void) {
  int acc = 0;
  for (int i = 0; i < 4; i = i + 1) {
    grid[i].x = i;
    grid[i].y = i * 10;
  }
  for (int i = 0; i < 4; i = i + 1) {
    acc = acc + grid[i].x + grid[i].y;
  }
  return acc;
}
void main_thread(void) {
  print(sum());
  struct point *p = &grid[2];
  p->x = 100;
  print(grid[2].x);
  int arr[3] = {7, 8, 9};
  int *q = arr;
  print(q[1]);
}
`)
	res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
	if res.Status != StatusDone {
		t.Fatalf("status = %s (%s)", res.Status, res.FailMsg)
	}
	want := []int64{66, 100, 8}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestMallocLinkedList(t *testing.T) {
	m := compile(t, `
struct node { int v; struct node *next; };
void main_thread(void) {
  struct node *head = (struct node *)0;
  for (int i = 0; i < 5; i = i + 1) {
    struct node *n = malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  int sum = 0;
  while (head != 0) {
    sum = sum + head->v;
    head = head->next;
  }
  print(sum);
}
`)
	res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
	if res.Status != StatusDone || res.Output[0] != 10 {
		t.Fatalf("status=%s output=%v", res.Status, res.Output)
	}
}

func TestSpawnJoin(t *testing.T) {
	m := compile(t, `
int counter;
void worker(void) {
  __faa(&counter, 1);
}
void main_thread(void) {
  spawn(worker);
  spawn(worker);
  spawn(worker);
  join();
  assert(counter == 3);
  print(counter);
}
`)
	for seed := int64(0); seed < 20; seed++ {
		res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}, Seed: seed})
		if res.Status != StatusDone {
			t.Fatalf("seed %d: status = %s (%s)", seed, res.Status, res.FailMsg)
		}
	}
}

func TestBarrierRendezvous(t *testing.T) {
	m := compile(t, `
int phase1[3];
int ok;
void worker(void) {
  int id = tid() - 1;
  phase1[id] = 1;
  barrier(3);
  // After the barrier every worker observes all phase-1 writes.
  if (phase1[0] + phase1[1] + phase1[2] == 3) {
    __faa(&ok, 1);
  }
}
void main_thread(void) {
  spawn(worker);
  spawn(worker);
  spawn(worker);
  join();
  assert(ok == 3);
}
`)
	for seed := int64(0); seed < 20; seed++ {
		res := run(t, m, Options{Model: memmodel.ModelWMM, Entries: []string{"main_thread"}, Seed: seed})
		if res.Status != StatusDone {
			t.Fatalf("seed %d: status = %s (%s)", seed, res.Status, res.FailMsg)
		}
	}
}

// TestMessagePassingWeakness (the executable version of Figure 1)
// lives in port_test.go, in the external test package: it needs the
// atomig pipeline, which imports vm through the race detector.

// TestMessagePassingHoldsOnTSO: the unported program is correct on TSO —
// that is the porting problem in a nutshell.
func TestMessagePassingHoldsOnTSO(t *testing.T) {
	m := compile(t, `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`)
	for seed := int64(0); seed < 200; seed++ {
		res := run(t, m, Options{
			Model: memmodel.ModelTSO, Entries: []string{"reader", "writer"},
			Seed: seed, MaxSteps: 100_000,
		})
		if res.Status == StatusAssertFailed {
			t.Fatalf("MP failed under TSO at seed %d", seed)
		}
	}
}

func TestCountersAndCycles(t *testing.T) {
	m := compile(t, `
_Atomic int a;
int p;
void main_thread(void) {
  p = 1;        // non-atomic store
  int x = p;    // non-atomic load (plus local slot traffic)
  a = x;        // atomic store
  x = a;        // atomic load
  __fence();
  __faa(&a, 1);
}
`)
	res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}})
	if res.Status != StatusDone {
		t.Fatalf("status = %s", res.Status)
	}
	cnt := res.Counters
	if cnt.AtomicStores != 1 || cnt.AtomicLoads != 1 {
		t.Errorf("atomic loads/stores = %d/%d, want 1/1", cnt.AtomicLoads, cnt.AtomicStores)
	}
	if cnt.Fences != 1 || cnt.RMWs != 1 {
		t.Errorf("fences/rmws = %d/%d, want 1/1", cnt.Fences, cnt.RMWs)
	}
	if cnt.NonAtomicStores == 0 || cnt.NonAtomicLoads == 0 {
		t.Error("non-atomic counters empty")
	}
	if res.MaxCycles == 0 || res.TotalCycles < res.MaxCycles {
		t.Errorf("cycles inconsistent: max=%d total=%d", res.MaxCycles, res.TotalCycles)
	}
	// The cost model must price a draining fence above an implicit
	// barrier, and implicit barriers above plain accesses.
	costs := DefaultCosts()
	if costs.FenceSC+costs.FenceDrain <= costs.AtomicStore || costs.AtomicStore <= costs.Plain {
		t.Error("cost model ordering violated")
	}
	if costs.ContendedLoad <= costs.ContendedPlain {
		t.Error("atomic fill must cost more than the plain-load residue")
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := compile(t, `
void stuck(void) {
  barrier(2); // nobody else ever arrives
}
`)
	res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"stuck"}})
	if res.Status != StatusDeadlock {
		t.Fatalf("status = %s, want deadlock", res.Status)
	}
}

func TestStepLimit(t *testing.T) {
	m := compile(t, `
void spin(void) {
  while (1) { }
}
`)
	res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"spin"}, MaxSteps: 1000})
	if res.Status != StatusStepLimit {
		t.Fatalf("status = %s, want step-limit", res.Status)
	}
}

func TestNondetRange(t *testing.T) {
	m := compile(t, `
void main_thread(void) {
  int x = nondet();
  assert(x == 0 || x == 1);
  print(x);
}
`)
	for seed := int64(0); seed < 10; seed++ {
		res := run(t, m, Options{Model: memmodel.ModelSC, Entries: []string{"main_thread"}, Seed: seed})
		if res.Status != StatusDone {
			t.Fatalf("status = %s", res.Status)
		}
	}
}

func TestEntryErrors(t *testing.T) {
	m := compile(t, `void f(int x) { }`)
	if _, err := Run(m, Options{Entries: []string{"missing"}}); err == nil {
		t.Error("accepted missing entry")
	}
	if _, err := Run(m, Options{Entries: []string{"f"}}); err == nil {
		t.Error("accepted entry with parameters")
	}
	if _, err := Run(m, Options{}); err == nil {
		t.Error("accepted empty entry list")
	}
}

func TestProfileAttributesCycles(t *testing.T) {
	m := compile(t, `
int g;
void hot(void) {
  for (int i = 0; i < 1000; i = i + 1) { g = g + i; }
}
void cold(void) { g = g + 1; }
void main_thread(void) { hot(); cold(); }
`)
	res := run(t, m, Options{
		Model: memmodel.ModelSC, Entries: []string{"main_thread"}, Profile: true,
	})
	if res.FuncCycles == nil {
		t.Fatal("no profile collected")
	}
	if res.FuncCycles["hot"] <= res.FuncCycles["cold"] {
		t.Fatalf("profile: hot=%d cold=%d", res.FuncCycles["hot"], res.FuncCycles["cold"])
	}
	var total int64
	for _, c := range res.FuncCycles {
		total += c
	}
	if total != res.TotalCycles {
		t.Fatalf("profile total %d != TotalCycles %d", total, res.TotalCycles)
	}
}
