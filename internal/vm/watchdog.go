package vm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// LivelockInfo is the watchdog's diagnosis for one thread after the
// step budget was exhausted: the loop the thread is spinning in, how hot
// it is, and whether the static spinloop detector also flags it — the
// cross-reference that turns "step-limit" into an actionable report
// ("thread 2 is stuck in @reader %spin, a detected spinloop whose
// partner never ran").
type LivelockInfo struct {
	// Thread is the spinning thread's index.
	Thread int
	// Fn and Block name the block the thread re-entered most often.
	Fn    string
	Block string
	// Entries is how many times the thread entered that block.
	Entries int64
	// SinceVisible is the number of global steps executed since this
	// thread last performed a visible (shared-memory) operation that it
	// had not seen before; a large value means the thread was starved
	// rather than spinning.
	SinceVisible int64
	// SpinCandidate reports whether the block lies inside a loop the
	// static spinloop detector flags in this function — i.e. the
	// livelock is in code AtoMig itself classifies as a spinloop.
	SpinCandidate bool
	// Done reports whether the thread had already finished when the
	// budget ran out (finished threads are reported only when some
	// other thread is live, for context).
	Done bool
}

func (l LivelockInfo) String() string {
	state := "spinning in"
	if l.Done {
		state = "finished at"
	}
	s := fmt.Sprintf("T%d %s @%s %%%s (%d entries, %d steps since last visible op)",
		l.Thread, state, l.Fn, l.Block, l.Entries, l.SinceVisible)
	if l.SpinCandidate {
		s += " [detected spinloop]"
	}
	return s
}

// FormatLivelock renders the watchdog report as a multi-line string.
func FormatLivelock(infos []LivelockInfo) string {
	if len(infos) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("livelock watchdog: step budget exhausted with no progress\n")
	for _, l := range infos {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}

// diagnoseLivelock builds the watchdog report after a step-limit halt.
// It names, per live thread, the hottest block (by entry count) and
// cross-references it against the spinloop detector's candidate loops.
func (v *VM) diagnoseLivelock() []LivelockInfo {
	spinCache := make(map[*ir.Func]map[*ir.Block]bool)
	spinBlocks := func(fn *ir.Func) map[*ir.Block]bool {
		if got, ok := spinCache[fn]; ok {
			return got
		}
		blocks := make(map[*ir.Block]bool)
		for _, info := range analysis.DetectSpinloops(fn) {
			for b := range info.Loop.Blocks {
				blocks[b] = true
			}
		}
		spinCache[fn] = blocks
		return blocks
	}

	var out []LivelockInfo
	for _, t := range v.threads {
		info := LivelockInfo{
			Thread:       t.id,
			SinceVisible: v.res.Steps - t.lastVisible,
			Done:         t.state == tDone,
		}
		if t.state == tDone {
			out = append(out, info)
			continue
		}
		f := t.frame()
		info.Fn, info.Block = f.fn.Name, f.blk.Name
		// The hottest block the thread kept re-entering is a better
		// spin diagnosis than wherever the budget happened to run out.
		var hot *ir.Block
		var hotN int64
		for b, n := range t.blockEntries {
			if n > hotN || (n == hotN && hot != nil && b.Name < hot.Name) {
				hot, hotN = b, n
			}
		}
		if hot != nil && hotN > 1 {
			info.Block = hot.Name
			info.Fn = hot.Fn.Name
			info.Entries = hotN
			info.SpinCandidate = spinBlocks(hot.Fn)[hot]
		} else {
			info.SpinCandidate = spinBlocks(f.fn)[f.blk]
		}
		out = append(out, info)
	}
	// Live, hottest threads first.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Done != out[j].Done {
			return !out[i].Done
		}
		return out[i].Entries > out[j].Entries
	})
	return out
}
