package weaken_test

import (
	"testing"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/weaken"
)

// TestSmokeCNALock weakens the ported CNA lock — the flagship target —
// with the race detector in the loop, and requires the >= 25% static
// cost reduction the subsystem exists to deliver.
func TestSmokeCNALock(t *testing.T) {
	p := corpus.Get("cna-lock")
	orig, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := weaken.Optimize(ported, weaken.DefaultOptions(p.MCEntries))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verdict=%s cost %d -> %d (%.1f%%) tried=%d accepted=%d rounds=%d fences_deleted=%d mc_checks=%d mc_time=%s",
		res.Verdict, res.CostBefore, res.CostAfter, res.Reduction(),
		res.Tried, res.Accepted, res.Rounds, res.FencesDeleted, res.MCChecks, res.MCTime)
	for _, d := range res.Decisions {
		t.Logf("  %s", d)
	}
	if res.Reason != "" {
		t.Fatalf("refused: %s", res.Reason)
	}
	if res.Verdict != "verified" {
		t.Fatalf("baseline verdict %s, want verified", res.Verdict)
	}
	if res.Reduction() < 25 {
		t.Fatalf("reduction %.1f%% below the 25%% flagship bar", res.Reduction())
	}
}
