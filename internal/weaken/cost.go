// Static cycle-cost model: per-architecture weights for atomic
// orderings and fences, summed over a module's static instruction
// sites. The dynamic cycle model in internal/vm (vm.Costs) prices one
// *execution*; this model prices the *program text*, which is what the
// optimizer minimizes — a weakening is a win if it lowers the static
// synchronization cost, whatever the workload, and the weights keep
// wins measurable without hardware.
//
// The relative weights follow the same Arm barrier study the dynamic
// model mirrors (Liu et al. 2020): implicit barriers (LDAR/STLR, SC
// atomics) are cheaper than explicit DMB fences, acquire-only and
// release-only forms are cheaper than their bidirectional versions,
// and relaxed atomics cost the same as plain accesses. Every ladder
// the optimizer walks (seq_cst → acq_rel → acquire/release → relaxed,
// fence deletion) is strictly decreasing under every model — enforced
// by TestCostModelsMonotone — so an accepted weakening always lowers
// the module cost and the greedy loop terminates.
package weaken

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// CostModel is the static weight table of one target architecture.
type CostModel struct {
	// Name identifies the architecture preset ("armv8", "power", ...).
	Name string

	// Loads, by static ordering.
	LoadPlain   int64 // plain or relaxed: LDR
	LoadAcquire int64 // LDAR (or LDAPR)
	LoadSC      int64 // LDAR + SC participation

	// Stores, by static ordering.
	StorePlain   int64 // plain or relaxed: STR
	StoreRelease int64 // STLR
	StoreSC      int64 // STLR + SC participation

	// Read-modify-writes (cmpxchg, atomicrmw), by static ordering.
	RMWRelaxed int64 // LDXR/STXR pair
	RMWAcquire int64 // LDAXR/STXR
	RMWRelease int64 // LDXR/STLXR
	RMWAcqRel  int64 // LDAXR/STLXR
	RMWSC      int64 // LDAXR/STLXR + SC participation

	// Explicit fences, by static ordering. A deleted fence costs 0.
	FenceAcquire int64 // DMB ISHLD
	FenceRelease int64 // DMB ISHST
	FenceAcqRel  int64 // DMB ISH
	FenceSC      int64 // DMB ISH + SC participation
}

// archModels is the preset registry. The relative spreads differ per
// architecture: POWER pays more for full barriers (hwsync) relative to
// lwsync than Armv8 pays for DMB ISH relative to one-way barriers,
// and RISC-V WMO prices all fences as variants of the FENCE
// instruction with closer spreads.
func archModels() []CostModel {
	return []CostModel{
		{
			Name:      "armv8",
			LoadPlain: 1, LoadAcquire: 3, LoadSC: 4,
			StorePlain: 1, StoreRelease: 5, StoreSC: 6,
			RMWRelaxed: 8, RMWAcquire: 9, RMWRelease: 10, RMWAcqRel: 11, RMWSC: 12,
			FenceAcquire: 2, FenceRelease: 3, FenceAcqRel: 4, FenceSC: 5,
		},
		{
			Name:      "power",
			LoadPlain: 1, LoadAcquire: 4, LoadSC: 7,
			StorePlain: 1, StoreRelease: 5, StoreSC: 8,
			RMWRelaxed: 9, RMWAcquire: 11, RMWRelease: 12, RMWAcqRel: 14, RMWSC: 17,
			FenceAcquire: 3, FenceRelease: 3, FenceAcqRel: 5, FenceSC: 9,
		},
		{
			Name:      "riscv-wmo",
			LoadPlain: 1, LoadAcquire: 3, LoadSC: 5,
			StorePlain: 1, StoreRelease: 4, StoreSC: 6,
			RMWRelaxed: 7, RMWAcquire: 8, RMWRelease: 9, RMWAcqRel: 10, RMWSC: 12,
			FenceAcquire: 2, FenceRelease: 2, FenceAcqRel: 3, FenceSC: 4,
		},
	}
}

// DefaultArch is the architecture the optimizer prices against when
// none is requested — the paper's evaluation target.
const DefaultArch = "armv8"

// Arch resolves an architecture preset by name ("" = DefaultArch).
func Arch(name string) (CostModel, error) {
	if name == "" {
		name = DefaultArch
	}
	for _, m := range archModels() {
		if m.Name == name {
			return m, nil
		}
	}
	return CostModel{}, fmt.Errorf("weaken: unknown arch %q (have %s)", name, strings.Join(ArchNames(), ", "))
}

// ArchNames lists the preset names, sorted.
func ArchNames() []string {
	ms := archModels()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}

// accessCost prices one load or store site.
func (c CostModel) accessCost(ord ir.MemOrder, isStore bool) int64 {
	if isStore {
		switch ord {
		case ir.NotAtomic, ir.Relaxed:
			return c.StorePlain
		case ir.Release, ir.AcqRel:
			return c.StoreRelease
		default:
			return c.StoreSC
		}
	}
	switch ord {
	case ir.NotAtomic, ir.Relaxed:
		return c.LoadPlain
	case ir.Acquire, ir.AcqRel:
		return c.LoadAcquire
	default:
		return c.LoadSC
	}
}

// rmwCost prices one cmpxchg/atomicrmw site.
func (c CostModel) rmwCost(ord ir.MemOrder) int64 {
	switch ord {
	case ir.NotAtomic, ir.Relaxed:
		return c.RMWRelaxed
	case ir.Acquire:
		return c.RMWAcquire
	case ir.Release:
		return c.RMWRelease
	case ir.AcqRel:
		return c.RMWAcqRel
	default:
		return c.RMWSC
	}
}

// fenceCost prices one fence site.
func (c CostModel) fenceCost(ord ir.MemOrder) int64 {
	switch ord {
	case ir.Acquire:
		return c.FenceAcquire
	case ir.Release:
		return c.FenceRelease
	case ir.AcqRel:
		return c.FenceAcqRel
	default:
		return c.FenceSC
	}
}

// InstrCost prices one instruction site; non-synchronization
// instructions cost 0 (the metric isolates what weakening can change,
// so a 25% reduction means 25% less synchronization, not 25% diluted
// across arithmetic).
func (c CostModel) InstrCost(in *ir.Instr) int64 {
	switch in.Op {
	case ir.OpLoad:
		return c.accessCost(in.Ord, false)
	case ir.OpStore:
		return c.accessCost(in.Ord, true)
	case ir.OpCmpXchg, ir.OpRMW:
		return c.rmwCost(in.Ord)
	case ir.OpFence:
		return c.fenceCost(in.Ord)
	}
	return 0
}

// Cost sums the static synchronization cost of every instruction site
// in the module.
func Cost(m *ir.Module, c CostModel) int64 {
	var total int64
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				total += c.InstrCost(in)
			}
		}
	}
	return total
}
