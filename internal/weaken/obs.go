package weaken

import "repro/internal/obs"

// counters are the weaken.* metrics of one optimization run
// (docs/OBSERVABILITY.md). Counters are cumulative across runs sharing
// a provider — a bench sweep optimizing many modules sums naturally —
// and everything is nil-safe: a nil provider yields no-op handles.
type counters struct {
	runs          *obs.Counter
	tried         *obs.Counter
	accepted      *obs.Counter
	rejected      *obs.Counter
	rounds        *obs.Counter
	frozen        *obs.Counter
	sitesWeakened *obs.Counter
	fencesDeleted *obs.Counter
	costReduced   *obs.Counter
	verifyMicros  *obs.Histogram
}

func newCounters(p *obs.Provider) counters {
	return counters{
		runs:          p.Counter("weaken.runs_completed"),
		tried:         p.Counter("weaken.candidates_tried"),
		accepted:      p.Counter("weaken.candidates_accepted"),
		rejected:      p.Counter("weaken.candidates_rejected"),
		rounds:        p.Counter("weaken.rounds_run"),
		frozen:        p.Counter("weaken.sites_frozen"),
		sitesWeakened: p.Counter("weaken.sites_weakened"),
		fencesDeleted: p.Counter("weaken.fences_deleted"),
		costReduced:   p.Counter("weaken.cost_reduced"),
		verifyMicros:  p.Histogram("weaken.verify_micros"),
	}
}

// publish records the run-level outcomes that are not incremented
// along the way: one run completed, weakening this many distinct
// sites (fence deletions included — a decision is a site).
func (c counters) publish(res *Result) {
	if res == nil {
		return
	}
	c.runs.Inc()
	c.sitesWeakened.Add(int64(len(res.Decisions)))
}
