// The oracle seam: which engine vouches for a candidate weakening.
//
// Every acceptance decision in this package flows through exactly one
// verification call, and OracleMode selects what answers it. The
// default is the bounded-exhaustive model checker — a proof within the
// budget. The stress engine (internal/stress) is the cheap alternative:
// a seeded schedule sweep whose verdict is a *witness*, not a proof.
// The two compose:
//
//   - OracleScreened keeps the baseline and the merge exhaustive and
//     uses stress only to screen round candidates. Screening acceptance
//     is regression-only (acceptStress): a candidate is dropped only
//     when the sweep witnesses an assertion violation, a race key
//     outside the baseline set, or a fresh livelock — all regressions
//     the exhaustive screen would also reject, since every stress
//     schedule is a real execution inside the checker's search space.
//     Stress-screening therefore passes a superset of what exhaustive
//     screening passes, and the strict exhaustive merge check remains
//     the gate for every commit: the weakened module is the same as
//     under OracleExhaustive (TestOracleEquivalence pins this on the
//     litmus corpus), at a fraction of the checker time.
//   - OracleStress runs baseline, screening and merge all on the
//     stress engine, for programs beyond exhaustive reach — where
//     mc.Check returns `unknown` and the exhaustive optimizer refuses.
//     Acceptance is regression-only throughout, and the result's
//     verdict is reported as "stress-clean"/"stress-racy" to keep the
//     weaker guarantee visible: no regression was witnessed under the
//     configured schedule budget.
//
// docs/STRESS.md#the-weakening-oracle is the full soundness argument.
package weaken

import (
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/stress"
)

// OracleMode selects the verification oracle behind every candidate
// check.
type OracleMode int

const (
	// OracleExhaustive re-verifies every candidate with the
	// bounded-exhaustive checker (the default).
	OracleExhaustive OracleMode = iota
	// OracleScreened stress-screens candidates and exhaustively
	// verifies only the survivors; same output as OracleExhaustive.
	OracleScreened
	// OracleStress runs every check on the stress engine; for programs
	// beyond exhaustive reach.
	OracleStress
)

// AllOracleModes lists the modes in parse order.
func AllOracleModes() []OracleMode {
	return []OracleMode{OracleExhaustive, OracleScreened, OracleStress}
}

func (o OracleMode) String() string {
	switch o {
	case OracleExhaustive:
		return "exhaustive"
	case OracleScreened:
		return "screened"
	case OracleStress:
		return "stress"
	}
	return fmt.Sprintf("OracleMode(%d)", int(o))
}

// ParseOracleMode maps a CLI spelling to its mode.
func ParseOracleMode(s string) (OracleMode, error) {
	for _, m := range AllOracleModes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("weaken: unknown oracle %q (want exhaustive, screened or stress)", s)
}

// checkRole distinguishes the three verification points of a run — the
// oracle dispatch is role-aware (OracleScreened swaps only the screen).
type checkRole int

const (
	roleBaseline checkRole = iota
	roleScreen
	roleMerge
)

// verify runs one re-verification through the oracle the run and role
// select. The stressed return tells the caller which accounting bucket
// (note vs noteStress) and acceptance rule (accepted vs acceptStress)
// apply to the result.
func (w *weakener) verify(m *ir.Module, role checkRole) (res *mc.Result, el time.Duration, stressed bool, err error) {
	switch w.opts.Oracle {
	case OracleScreened:
		if role != roleScreen {
			break // baseline and merge stay exhaustive
		}
		res, el, err = w.stressCheck(m, w.opts.StressSeeds, 1)
		return res, el, true, err
	case OracleStress:
		// Screening runs single-threaded (the candidate pool is the
		// parallel axis); the sequential baseline and merge checks get
		// the full fan-out and the heavier confirm budget.
		seeds, workers := w.opts.StressSeeds, 1
		if role != roleScreen {
			seeds, workers = w.opts.StressConfirmSeeds, w.res.Workers
		}
		res, el, err = w.stressCheck(m, seeds, workers)
		return res, el, true, err
	}
	res, el, err = w.check(m)
	return res, el, false, err
}

// stressCheck sweeps m's schedule grid and folds the outcome into the
// checker's result shape: schedules become executions, step-limited
// schedules become truncations, and the verdict is the witnessed one —
// VerdictPass here means "nothing witnessed", never "proved".
func (w *weakener) stressCheck(m *ir.Module, seeds, workers int) (*mc.Result, time.Duration, error) {
	t0 := time.Now()
	sres, err := stress.Sweep(m, stress.Options{
		Model:    w.opts.Model,
		Entries:  w.opts.Entries,
		Seeds:    seeds,
		Sample:   w.opts.StressSample,
		Workers:  workers,
		MaxSteps: w.opts.MaxStepsPerExec,
		Context:  w.opts.Context,
		Obs:      w.opts.Obs,
	})
	if err != nil {
		return nil, 0, err
	}
	out := &mc.Result{
		Executions: sres.Schedules,
		Truncated:  sres.StepLimited,
		Violations: sres.Violations(),
	}
	if w.opts.DetectRaces {
		out.Races = sres.Races()
	}
	switch {
	case len(out.Violations) > 0:
		out.Verdict = mc.VerdictFail
	case len(out.Races) > 0:
		out.Verdict = mc.VerdictRace
	default:
		out.Verdict = mc.VerdictPass
	}
	el := time.Since(t0)
	w.c.verifyMicros.Observe(el.Microseconds())
	return out, el, nil
}

// acceptFor routes one verification result to the acceptance rule its
// oracle warrants.
func (w *weakener) acceptFor(res *mc.Result, stressed bool) bool {
	if stressed {
		return w.acceptStress(res)
	}
	return w.accepted(res)
}

// acceptStress is the regression-only acceptance rule for stress
// results. A sweep that merely fails to re-find a baseline race must
// not reject a candidate — under OracleScreened that would diverge
// from what the exhaustive screen accepts — so rejection requires a
// *witnessed* regression: an assertion violation or deadlock, a race
// key outside the baseline set, or a step-limited schedule when the
// baseline had none (a weakening that introduced a livelock).
func (w *weakener) acceptStress(res *mc.Result) bool {
	if res.Verdict == mc.VerdictFail {
		return false
	}
	for _, r := range res.Races {
		if !w.baseRace[r.Key()] {
			return false
		}
	}
	if res.Truncated > 0 && w.base.Truncated == 0 {
		return false
	}
	return true
}

// noteStress accounts one completed stress-oracle check into the
// report. Sequential only, like note.
func (w *weakener) noteStress(schedules int, el time.Duration) {
	w.res.StressChecks++
	w.res.StressSchedules += schedules
	w.res.StressTime += el
}

// stressVerdictName renders a stress-oracle baseline verdict with the
// weaker guarantee visible in the name.
func stressVerdictName(v mc.Verdict) string {
	switch v {
	case mc.VerdictPass:
		return "stress-clean"
	case mc.VerdictRace:
		return "stress-racy"
	case mc.VerdictFail:
		return "stress-violated"
	}
	return "stress-" + v.String()
}
