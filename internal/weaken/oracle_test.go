package weaken_test

import (
	"strings"
	"testing"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/weaken"
)

// portedCorpus compiles and ports one corpus program.
func portedCorpus(t *testing.T, name string) (*ir.Module, *corpus.Program) {
	t.Helper()
	p := corpus.Get(name)
	orig, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ported, p
}

// TestOracleEquivalence: stress-screening then exhaustively confirming
// accepts exactly the same final weakened module as exhaustive-only.
// Screening acceptance is regression-only, so the stress screen passes
// a superset of what the exhaustive screen passes, and the strict
// exhaustive merge check remains the gate for every commit — the two
// modes' outputs are byte-identical, while the screened mode spends
// far fewer exhaustive checks.
func TestOracleEquivalence(t *testing.T) {
	cases := []struct {
		program     string
		detectRaces bool
	}{
		// The ported seqlock keeps a benign retry race, so the
		// conformance suite (and this test) weakens it verdict-only.
		{"seqlock", false},
		{"seqlock-gap", true},
		{"cna-lock", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.program, func(t *testing.T) {
			t.Parallel()
			ported, p := portedCorpus(t, tc.program)

			run := func(oracle weaken.OracleMode) (*ir.Module, *weaken.Result) {
				opts := weaken.DefaultOptions(p.MCEntries)
				opts.DetectRaces = tc.detectRaces
				opts.Oracle = oracle
				opts.Workers = 4
				m, res, err := weaken.OptimizeClone(ported, opts)
				if err != nil {
					t.Fatalf("%s: %v", oracle, err)
				}
				if res.Reason != "" {
					t.Fatalf("%s refused: %s", oracle, res.Reason)
				}
				return m, res
			}
			exM, exRes := run(weaken.OracleExhaustive)
			scM, scRes := run(weaken.OracleScreened)

			if got, want := scM.String(), exM.String(); got != want {
				t.Errorf("screened module differs from exhaustive:\n--- exhaustive\n%s\n--- screened\n%s", want, got)
			}
			if got, want := decisionLog(scRes), decisionLog(exRes); got != want {
				t.Errorf("screened decisions differ:\n--- exhaustive\n%s\n--- screened\n%s", want, got)
			}
			if scRes.Verdict != exRes.Verdict {
				t.Errorf("verdict %q != %q", scRes.Verdict, exRes.Verdict)
			}
			if scRes.Oracle != "screened" || exRes.Oracle != "" {
				t.Errorf("oracle provenance: screened=%q exhaustive=%q", scRes.Oracle, exRes.Oracle)
			}
			if scRes.StressChecks == 0 {
				t.Error("screened run recorded no stress checks: seam inert")
			}
			if scRes.MCChecks >= exRes.MCChecks {
				t.Errorf("screening saved no exhaustive checks: %d (screened) >= %d (exhaustive)",
					scRes.MCChecks, exRes.MCChecks)
			}
			t.Logf("exhaustive: %d mc checks; screened: %d mc + %d stress (cost %d -> %d, %.1f%%)",
				exRes.MCChecks, scRes.MCChecks, scRes.StressChecks,
				scRes.CostBefore, scRes.CostAfter, scRes.Reduction())
		})
	}
}

// decisionLog renders the accepted weakening set for comparison.
func decisionLog(res *weaken.Result) string {
	var b strings.Builder
	for _, d := range res.Decisions {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestOracleStressRescuesUnknown: a budget too small for the
// exhaustive checker refuses the run ("baseline unknown"); the stress
// oracle, whose verdicts are witnesses rather than proofs, weakens the
// same program under the same tiny exploration budget end to end.
func TestOracleStressRescuesUnknown(t *testing.T) {
	ported, p := portedCorpus(t, "seqlock-gap")

	opts := weaken.DefaultOptions(p.MCEntries)
	opts.MaxExecs = 20 // far below the program's state space
	_, refused, err := weaken.OptimizeClone(ported, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(refused.Reason, "baseline unknown") {
		t.Fatalf("exhaustive run under a starvation budget should refuse, got reason %q", refused.Reason)
	}

	opts.Oracle = weaken.OracleStress
	opts.Workers = 4
	_, res, err := weaken.OptimizeClone(ported, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "" {
		t.Fatalf("stress oracle refused: %s", res.Reason)
	}
	if res.Verdict != "stress-clean" {
		t.Fatalf("verdict %q, want stress-clean", res.Verdict)
	}
	if res.Oracle != "stress" {
		t.Fatalf("oracle provenance %q, want stress", res.Oracle)
	}
	if res.CostAfter >= res.CostBefore {
		t.Fatalf("no cost reduction: %d -> %d", res.CostBefore, res.CostAfter)
	}
	if res.MCChecks != 0 {
		t.Fatalf("stress oracle ran %d exhaustive checks", res.MCChecks)
	}
	if res.StressChecks == 0 {
		t.Fatal("stress oracle recorded no stress checks")
	}
	t.Logf("stress oracle: cost %d -> %d (%.1f%%), %d stress checks / %d schedules",
		res.CostBefore, res.CostAfter, res.Reduction(), res.StressChecks, res.StressSchedules)
}

// TestOracleStressDeterministicAcrossWorkers: the stress oracle keeps
// the determinism contract — the weakened module is byte-identical at
// every screening fan-out.
func TestOracleStressDeterministicAcrossWorkers(t *testing.T) {
	ported, p := portedCorpus(t, "seqlock-gap")
	var want string
	for _, workers := range []int{1, 4} {
		opts := weaken.DefaultOptions(p.MCEntries)
		opts.Oracle = weaken.OracleStress
		opts.Workers = workers
		opts.StressSeeds = 16
		m, res, err := weaken.OptimizeClone(ported, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason != "" {
			t.Fatalf("refused: %s", res.Reason)
		}
		got := m.String() + decisionLog(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("stress-oracle output differs at %d workers", workers)
		}
	}
}

// TestParseOracleMode: every mode round-trips; junk is rejected.
func TestParseOracleMode(t *testing.T) {
	for _, m := range weaken.AllOracleModes() {
		got, err := weaken.ParseOracleMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %s: got %v, %v", m, got, err)
		}
	}
	if _, err := weaken.ParseOracleMode("fuzzy"); err == nil {
		t.Error("junk oracle name parsed")
	}
}

// TestSaltOracleFields: the oracle configuration is part of the cache
// fingerprint, and the default (exhaustive) fingerprint is unchanged
// from before the seam existed.
func TestSaltOracleFields(t *testing.T) {
	base := weaken.DefaultOptions([]string{"t0"})
	if s := base.Salt(); strings.Contains(s, "oracle=") {
		t.Errorf("default salt mentions the oracle: %s", s)
	}
	a := base
	a.Oracle = weaken.OracleScreened
	b := a
	b.StressSeeds = 64
	c := a
	c.StressSample = 0.5
	salts := map[string]bool{base.Salt(): true, a.Salt(): true, b.Salt(): true, c.Salt(): true}
	if len(salts) != 4 {
		t.Errorf("oracle fields do not all change the salt: %v", salts)
	}
}
