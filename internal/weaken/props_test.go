package weaken_test

import (
	"testing"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/weaken"
)

// portFlagship compiles and ports one corpus program for the property
// tests.
func portFlagship(t *testing.T, name string) (*ir.Module, *corpus.Program) {
	t.Helper()
	p := corpus.Get(name)
	if p == nil {
		t.Fatalf("program %q not in corpus", name)
	}
	orig, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ported, p
}

// TestWeakenIdempotent pins the fixpoint property: running the
// optimizer on its own output accepts nothing — weaken(weaken(p)) ==
// weaken(p). A second pass that still finds work would mean the first
// pass did not actually reach the fixpoint it claims.
func TestWeakenIdempotent(t *testing.T) {
	ported, p := portFlagship(t, "seqlock-gap")
	once, res1, err := weaken.OptimizeClone(ported, weaken.DefaultOptions(p.MCEntries))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Reason != "" || res1.Accepted == 0 {
		t.Fatalf("first pass: reason=%q accepted=%d, want an effective run", res1.Reason, res1.Accepted)
	}
	twice, res2, err := weaken.OptimizeClone(once, weaken.DefaultOptions(p.MCEntries))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Accepted != 0 || len(res2.Decisions) != 0 {
		t.Errorf("second pass accepted %d weakenings (%v), want 0", res2.Accepted, res2.Decisions)
	}
	if res2.CostBefore != res1.CostAfter || res2.CostAfter != res1.CostAfter {
		t.Errorf("second pass cost %d -> %d, want stable at %d", res2.CostBefore, res2.CostAfter, res1.CostAfter)
	}
	if got, want := twice.String(), once.String(); got != want {
		t.Errorf("weaken(weaken(p)) != weaken(p):\n--- second ---\n%s--- first ---\n%s", got, want)
	}
}

// TestWeakenMonotoneCost pins the cost direction on every corpus
// program with a model-checking harness: whatever the optimizer does —
// weaken, refuse, or no-op — the scope cost never increases, and the
// sum of the decisions' deltas accounts exactly for the difference.
func TestWeakenMonotoneCost(t *testing.T) {
	for _, name := range corpus.Names() {
		p := corpus.Get(name)
		if len(p.MCEntries) == 0 {
			continue
		}
		// The big CK-style harnesses are exercised by the bench suite;
		// the litmus set plus both flagships is enough to pin the
		// property without minutes of checker time.
		switch name {
		case "mp", "sb", "lb", "corr", "seqlock", "seqlock-gap", "cna-lock":
		default:
			continue
		}
		t.Run(name, func(t *testing.T) {
			ported, p := portFlagship(t, name)
			opts := weaken.DefaultOptions(p.MCEntries)
			if name == "seqlock" {
				// Benign retry-race: the fingerprinted space is
				// intractable (docs/WEAKENING.md).
				opts.DetectRaces = false
			}
			res, err := weaken.Optimize(ported, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.CostAfter > res.CostBefore {
				t.Errorf("cost increased: %d -> %d", res.CostBefore, res.CostAfter)
			}
			var sum int64
			for _, d := range res.Decisions {
				if d.CostDelta <= 0 {
					t.Errorf("decision %s has non-positive delta %d", d, d.CostDelta)
				}
				sum += d.CostDelta
			}
			if res.CostBefore-res.CostAfter != sum {
				t.Errorf("decision deltas sum to %d, cost moved %d", sum, res.CostBefore-res.CostAfter)
			}
		})
	}
}

// TestWeakenDeterministicAcrossWorkers is the acceptance-criteria
// determinism check: the weakened module is byte-identical at every
// screening fan-out from 1 through 8, and so is the decision log.
func TestWeakenDeterministicAcrossWorkers(t *testing.T) {
	ported, p := portFlagship(t, "seqlock-gap")
	var refText string
	var refDecisions []weaken.Decision
	for j := 1; j <= 8; j++ {
		opts := weaken.DefaultOptions(p.MCEntries)
		opts.Workers = j
		weakened, res, err := weaken.OptimizeClone(ported, opts)
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		text := weakened.String()
		if j == 1 {
			refText, refDecisions = text, res.Decisions
			if res.Accepted == 0 {
				t.Fatal("reference run accepted nothing; the property would hold vacuously")
			}
			continue
		}
		if text != refText {
			t.Errorf("-j %d: weakened module differs from -j 1", j)
		}
		if len(res.Decisions) != len(refDecisions) {
			t.Errorf("-j %d: %d decisions, want %d", j, len(res.Decisions), len(refDecisions))
			continue
		}
		for i, d := range res.Decisions {
			if d != refDecisions[i] {
				t.Errorf("-j %d: decision %d = %+v, want %+v", j, i, d, refDecisions[i])
			}
		}
	}
}

// TestWeakenBudgetRejection pins the unknown-verdict semantics: a
// baseline the checker cannot finish inside the budget refuses the
// whole run — module untouched, nothing tried — rather than weakening
// against a verdict nobody established.
func TestWeakenBudgetRejection(t *testing.T) {
	ported, p := portFlagship(t, "seqlock-gap")
	before := ported.String()
	opts := weaken.DefaultOptions(p.MCEntries)
	opts.MaxExecs = 1 // exhausted immediately: baseline is unknown
	res, err := weaken.Optimize(ported, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason == "" {
		t.Fatal("unknown baseline did not refuse the run")
	}
	if res.Tried != 0 || res.Accepted != 0 || len(res.Decisions) != 0 {
		t.Errorf("refused run still tried %d / accepted %d candidates", res.Tried, res.Accepted)
	}
	if res.CostAfter != res.CostBefore {
		t.Errorf("refused run moved cost %d -> %d", res.CostBefore, res.CostAfter)
	}
	if ported.String() != before {
		t.Error("refused run mutated the module")
	}
}
