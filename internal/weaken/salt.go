package weaken

import (
	"fmt"
	"strings"
	"time"
)

// Per-candidate budget defaults, applied by Optimize and mirrored by
// Salt so a zero value and the explicit default fingerprint alike.
const (
	defaultMaxExecs    = 200_000
	defaultTimeBudget  = 30 * time.Second
	defaultStressSeeds = 32
)

// Salt fingerprints every Options field that can change the optimizer's
// output, in a canonical form: zero values are normalized to the
// defaults Optimize itself applies, so an explicit default and an
// unset field share a fingerprint. Workers is excluded (the weakened
// module is byte-identical at every fan-out), as are Context and Obs
// (they never influence the result).
//
// Incremental consumers — the serve daemon folds this into the
// session's atomig.CacheSalt — use it to guarantee that toggling any
// optimize option invalidates cached state computed under a different
// configuration.
func (o Options) Salt() string {
	arch := o.Arch
	if arch == "" {
		arch = DefaultArch
	}
	execs := o.MaxExecs
	if execs == 0 {
		execs = defaultMaxExecs
	}
	budget := o.TimeBudget
	if budget == 0 {
		budget = defaultTimeBudget
	}
	s := fmt.Sprintf("weaken/v1|model=%d|arch=%s|races=%t|execs=%d|steps=%d|budget=%s|entries=%s",
		o.Model, arch, o.DetectRaces, execs, o.MaxStepsPerExec, budget,
		strings.Join(o.Entries, ","))
	// The oracle segment appears only for non-default oracles, so every
	// fingerprint minted before the seam exists is still valid.
	if o.Oracle != OracleExhaustive {
		seeds := o.StressSeeds
		if seeds == 0 {
			seeds = defaultStressSeeds
		}
		confirm := o.StressConfirmSeeds
		if confirm == 0 {
			confirm = 4 * seeds
		}
		sample := o.StressSample
		if sample <= 0 || sample >= 1 {
			sample = 1
		}
		s += fmt.Sprintf("|oracle=%s|sseeds=%d|sconfirm=%d|ssample=%g",
			o.Oracle, seeds, confirm, sample)
	}
	return s
}
