package weaken_test

import (
	"testing"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/weaken"
)

// TestSmokeSeqlock ports the seqlock corpus program and weakens it:
// the run must terminate, strictly reduce the static cost, and keep
// the verified verdict.
func TestSmokeSeqlock(t *testing.T) {
	p := corpus.Get("seqlock")
	orig, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := weaken.DefaultOptions(p.MCEntries)
	// The ported seqlock's benign retry-race on the data fields makes
	// the fingerprinted state space intractable; weaken verdict-only,
	// like the conformance suite checks this program.
	opts.DetectRaces = false
	res, err := weaken.Optimize(ported, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verdict=%s cost %d -> %d (%.1f%%) tried=%d accepted=%d rounds=%d fences_deleted=%d",
		res.Verdict, res.CostBefore, res.CostAfter, res.Reduction(),
		res.Tried, res.Accepted, res.Rounds, res.FencesDeleted)
	for _, d := range res.Decisions {
		t.Logf("  %s", d)
	}
	if res.Reason != "" {
		t.Fatalf("refused: %s", res.Reason)
	}
	if res.CostAfter >= res.CostBefore {
		t.Fatalf("no cost reduction: %d -> %d", res.CostBefore, res.CostAfter)
	}
}
