// Package weaken is the checker-in-the-loop barrier-weakening
// optimizer: it takes a ported module — where the atomig pipeline made
// every synchronization access seq_cst and inserted seq_cst fences —
// and greedily weakens it to a fixpoint, keeping only the weakenings
// the model checker proves safe (in the style of "Verifying and
// Optimizing Compact NUMA-Aware Locks on Weak Memory Models").
//
// Each atomic access walks a role-specific ladder (loads seq_cst →
// acquire → relaxed, stores seq_cst → release → relaxed, RMWs seq_cst
// → acq_rel → acquire/release → relaxed) and each fence walks seq_cst
// → acq_rel → acquire/release → deletion. A candidate step is accepted
// only when `internal/mc` re-verifies the weakened program under the
// WMM machine with race detection on: the verdict must equal the
// baseline verdict of the ported module, no new race (by report key)
// may appear, and an `unknown` verdict — budget exhausted — rejects
// the candidate. A module whose baseline verdict is `violated` is
// refused outright: the optimizer only transforms programs whose
// checkable specification currently holds.
//
// The loop is round-based so independent candidates verify in
// parallel without losing determinism: a screening pool (Options.
// Workers) checks every candidate of the round against a private
// clone of the current module, then a sequential merge re-applies the
// survivors in site order, re-verifying cumulatively — two weakenings
// each safe alone may be unsafe together, and only the cumulative
// check can admit them. Screening verdicts and the merge order are
// both deterministic, so the weakened module is byte-identical for
// every worker count (TestWeakenDeterministicAcrossWorkers).
//
// docs/WEAKENING.md is the subsystem reference: algorithm, cost
// model, soundness argument, and budget semantics.
package weaken

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/alias"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/race"
)

// Options configures an optimization run.
type Options struct {
	// Model is the machine the checker re-verifies under
	// (default ModelWMM — weakening against SC or TSO would certify
	// orderings those machines provide for free).
	Model memmodel.Model
	// Entries are the thread entry functions of the verification
	// harness; required.
	Entries []string
	// DetectRaces runs every re-verification with the happens-before
	// detector on, adding "no new race report keys" to the acceptance
	// rule. DefaultOptions turns it on; turn it off only for programs
	// whose fingerprinted state space is intractable (the acceptance
	// rule is then verdict-only — see docs/WEAKENING.md).
	DetectRaces bool
	// Workers sets the screening fan-out: that many goroutines check
	// independent candidates of a round in parallel, each against its
	// own clone of the module (0 or 1 = sequential). The weakened
	// module is byte-identical for every value.
	Workers int
	// MaxExecs bounds each candidate re-verification's explored
	// executions (0 = 200_000). An exhausted budget yields an unknown
	// verdict, which rejects the candidate — never accepts it.
	MaxExecs int
	// MaxStepsPerExec bounds each execution (0 = the mc default).
	MaxStepsPerExec int64
	// TimeBudget bounds each candidate re-verification's wall clock
	// (0 = 30s). Determinism across worker counts is guaranteed as
	// long as no candidate trips the time budget; the deterministic
	// budget knob is MaxExecs.
	TimeBudget time.Duration
	// Arch selects the static cost model ("" = DefaultArch). The cost
	// model never gates acceptance — only the checker does — but every
	// ladder step strictly decreases it, so accepted weakenings
	// monotonically lower the module cost.
	Arch string
	// Oracle selects the verification oracle (oracle.go,
	// docs/STRESS.md). OracleExhaustive (the default) re-verifies every
	// candidate with the bounded-exhaustive checker. OracleScreened
	// keeps the exhaustive baseline and merge but screens candidates
	// with the stress engine — the same final module, at a fraction of
	// the checker time. OracleStress runs every check on the stress
	// engine, for programs beyond exhaustive reach; acceptance then
	// means "no regression witnessed under the schedule budget", not a
	// proof.
	Oracle OracleMode
	// StressSeeds is the stress oracle's screening budget: schedules
	// per scheduler mode per check (0 = 32).
	StressSeeds int
	// StressConfirmSeeds is the heavier budget OracleStress spends on
	// the baseline and merge checks (0 = 4 × StressSeeds).
	StressConfirmSeeds int
	// StressSample is the stress oracle's per-location sampling
	// fraction, 0 < f <= 1 (0 = 1: observe every location; see
	// stress.Options.Sample for the soundness boundary).
	StressSample float64
	// Context, when non-nil, cancels the optimization between
	// candidate verifications; the module is left in the last
	// verified state (every committed weakening has already been
	// re-verified cumulatively, so a canceled run is still sound).
	Context context.Context
	// Obs, when non-nil, records weaken.* counters and spans
	// (docs/OBSERVABILITY.md).
	Obs *obs.Provider
}

// DefaultOptions returns the standard configuration for a harness.
func DefaultOptions(entries []string) Options {
	return Options{Model: memmodel.ModelWMM, Entries: entries, DetectRaces: true}
}

// Decision is one accepted weakening, with full provenance: where,
// what it was, what it became, which round committed it, and what it
// saved under the run's cost model.
type Decision struct {
	// Fn is the containing function; Site the access/fence rendering
	// with block and index provenance (race.SiteString format).
	Fn   string `json:"fn"`
	Site string `json:"site"`
	// Loc is the symbolic alias descriptor of the accessed location
	// ("@global" or "%struct:field"); empty for fences and dynamic
	// addresses. It is the join key the migration feedback loop
	// (-explain-races) uses to cross-reference weakened sites.
	Loc string `json:"loc,omitempty"`
	// Kind is "load", "store", "rmw", "cmpxchg" or "fence".
	Kind string `json:"kind"`
	// From and To are the orderings before and after ("seq_cst" →
	// "acquire", ...); To is "deleted" for a removed fence.
	From string `json:"from"`
	To   string `json:"to"`
	// Deleted marks a fence removed outright.
	Deleted bool `json:"deleted,omitempty"`
	// Round is the 1-based optimization round that committed this step.
	Round int `json:"round"`
	// CostDelta is the static cost saved by this step (positive).
	CostDelta int64 `json:"cost_delta"`
}

func (d Decision) String() string {
	to := d.To
	if d.Deleted {
		to = "deleted"
	}
	return fmt.Sprintf("%s: %s -> %s (round %d, -%d cycles)", d.Site, d.From, to, d.Round, d.CostDelta)
}

// Result reports an optimization run.
type Result struct {
	Module string `json:"module"`
	// Arch is the cost model the run priced against.
	Arch string `json:"arch"`
	// Workers is the screening fan-out the run used (>= 1). It never
	// influences the weakened module, only wall clock.
	Workers int `json:"workers"`
	// Verdict is the baseline verdict of the input module, which every
	// accepted candidate preserved ("verified" or "racy"; under the
	// stress oracle "stress-clean" or "stress-racy" — a witness, not a
	// proof); the final module re-verifies to exactly this verdict.
	Verdict string `json:"verdict"`
	// Oracle names the verification oracle when it is not the default
	// exhaustive checker ("screened" or "stress").
	Oracle string `json:"oracle,omitempty"`
	// Reason is set when the optimizer refused to run (baseline
	// violated or unknown); the module is unchanged.
	Reason string `json:"reason,omitempty"`

	// CostBefore and CostAfter are the static synchronization costs of
	// the optimization scope — the functions reachable from the
	// verification entries — before and after weakening. Unreachable
	// functions are never candidates (the checker cannot vouch for
	// code it does not execute), keep their ported orderings, and are
	// excluded from the cost so the reduction measures exactly what
	// the run verified.
	CostBefore int64 `json:"cost_before"`
	CostAfter  int64 `json:"cost_after"`
	// FuncsInScope and FuncsSkipped count the functions reachable and
	// not reachable from the entries; skipped functions stay at ported
	// strength.
	FuncsInScope int `json:"funcs_in_scope"`
	FuncsSkipped int `json:"funcs_skipped,omitempty"`

	// Tried / Accepted / Rejected count candidate verifications:
	// screening and merge checks both count toward Tried.
	Tried    int `json:"tried"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Rounds is the number of optimization rounds run to the fixpoint.
	Rounds int `json:"rounds"`
	// FencesDeleted counts fences removed outright.
	FencesDeleted int `json:"fences_deleted"`

	// Decisions is the accepted weakening set in deterministic site
	// order per round.
	Decisions []Decision `json:"decisions,omitempty"`

	// MCChecks and MCExecutions total the exhaustive checker work spent
	// (baseline + screening + merge); MCTime is its wall clock.
	MCChecks     int           `json:"mc_checks"`
	MCExecutions int           `json:"mc_executions"`
	MCTime       time.Duration `json:"mc_time_ns"`
	// StressChecks and StressSchedules total the stress oracle's work;
	// StressTime is its wall clock. All zero under OracleExhaustive.
	StressChecks    int           `json:"stress_checks,omitempty"`
	StressSchedules int           `json:"stress_schedules,omitempty"`
	StressTime      time.Duration `json:"stress_time_ns,omitempty"`
	// Duration is the whole optimization's wall clock.
	Duration time.Duration `json:"duration_ns"`
}

// Reduction returns the relative static cost reduction in percent.
func (r *Result) Reduction() float64 {
	if r.CostBefore == 0 {
		return 0
	}
	return 100 * float64(r.CostBefore-r.CostAfter) / float64(r.CostBefore)
}

// site is one weakenable instruction, addressed by structural
// coordinates so the same site resolves in any clone of the module.
type site struct {
	fi, bi  int
	in      *ir.Instr // the instruction in the live module
	frozen  bool      // all remaining weakenings rejected; ordering final
	deleted bool      // fence removed from the module; site retired
}

// pos resolves the site's current index within its block by identity —
// committed fence deletions shift positions, so indices are never
// cached across commits.
func (s *site) pos(m *ir.Module) int {
	return indexOf(m.Funcs[s.fi].Blocks[s.bi], s.in)
}

// candidate is one (site, weaker ordering) step proposed in a round.
type candidate struct {
	siteIdx int
	ord     ir.MemOrder
	del     bool
}

// weakener carries one optimization run.
type weakener struct {
	m        *ir.Module
	opts     Options
	cost     CostModel
	base     *mc.Result
	baseRace map[string]bool
	sites    []site
	res      *Result
	c        counters
}

// Optimize weakens m in place to a fixpoint and returns the report.
// The module must already be ported (the optimizer weakens whatever
// orderings are present; it never strengthens). Callers that need the
// original should clone first (OptimizeClone). Internal panics are
// contained and returned as errors.
func Optimize(m *ir.Module, opts Options) (res *Result, err error) {
	defer diag.Guard("weaken.Optimize", &err)
	if len(opts.Entries) == 0 {
		return nil, fmt.Errorf("weaken: no entry functions (the checker needs a harness)")
	}
	if opts.MaxExecs == 0 {
		opts.MaxExecs = defaultMaxExecs
	}
	if opts.TimeBudget == 0 {
		opts.TimeBudget = defaultTimeBudget
	}
	if opts.StressSeeds == 0 {
		opts.StressSeeds = defaultStressSeeds
	}
	if opts.StressConfirmSeeds == 0 {
		opts.StressConfirmSeeds = 4 * opts.StressSeeds
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	cost, err := Arch(opts.Arch)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	w := &weakener{
		m: m, opts: opts, cost: cost,
		res: &Result{Module: m.Name, Arch: cost.Name, Workers: workers},
		c:   newCounters(opts.Obs),
	}
	if opts.Oracle != OracleExhaustive {
		w.res.Oracle = opts.Oracle.String()
	}
	w.res.CostBefore = w.scopeCost()
	w.res.CostAfter = w.res.CostBefore

	trk := opts.Obs.Track("weaken")
	os := trk.Begin("weaken.optimize").Arg("module", m.Name).
		Arg("arch", cost.Name).Arg("workers", workers)
	defer func() {
		os.End()
		if err == nil {
			w.c.publish(w.res)
			ev := opts.Obs.Log().Event("weaken.optimize_completed").
				Str("module", m.Name).Str("arch", cost.Name).
				Int("accepted", int64(w.res.Accepted)).
				Int("fences_deleted", int64(w.res.FencesDeleted))
			if w.res.Reason != "" {
				ev = ev.Str("reason", w.res.Reason)
			}
			ev.Emit()
		}
	}()

	// Baseline: the verdict every weakening must preserve.
	bs := trk.Begin("weaken.baseline")
	var bel time.Duration
	var bstress bool
	w.base, bel, bstress, err = w.verify(m, roleBaseline)
	bs.Arg("verdict", verdictName(w.base, err)).End()
	if err != nil {
		return nil, fmt.Errorf("weaken: baseline check: %w", err)
	}
	if bstress {
		w.noteStress(w.base.Executions, bel)
		w.res.Verdict = stressVerdictName(w.base.Verdict)
	} else {
		w.note(w.base.Executions, bel)
		w.res.Verdict = w.base.Verdict.String()
	}
	switch w.base.Verdict {
	case mc.VerdictFail:
		w.res.Reason = "baseline violated: refusing to optimize a program whose specification does not hold"
		if bstress {
			w.res.Reason = "baseline violated (stress witness): refusing to optimize a program whose specification does not hold"
		}
		w.res.Duration = time.Since(start)
		return w.res, nil
	case mc.VerdictUnknown:
		// Unreachable under the stress oracle: a sweep always returns a
		// witnessed verdict.
		w.res.Reason = fmt.Sprintf("baseline unknown (%s): raise the budget to establish a verdict to preserve, or screen with -O-oracle=stress", w.base.Reason)
		w.res.Duration = time.Since(start)
		return w.res, nil
	}
	w.baseRace = make(map[string]bool, len(w.base.Races))
	for _, r := range w.base.Races {
		w.baseRace[r.Key()] = true
	}

	w.collectSites()
	for {
		if err := w.ctxErr(); err != nil {
			w.res.Duration = time.Since(start)
			return nil, err
		}
		w.res.Rounds++
		rs := trk.Begin("weaken.round").Arg("round", w.res.Rounds)
		changed, err := w.round(workers)
		rs.Arg("changed", changed).End()
		if err != nil {
			w.res.Duration = time.Since(start)
			return nil, err
		}
		w.c.rounds.Inc()
		if !changed {
			break
		}
	}
	w.res.CostAfter = w.scopeCost()
	w.res.Duration = time.Since(start)
	return w.res, nil
}

// OptimizeClone clones m, optimizes the clone, and returns it with the
// report, leaving m untouched.
func OptimizeClone(m *ir.Module, opts Options) (*ir.Module, *Result, error) {
	c, err := ir.CloneModule(m)
	if err != nil {
		return nil, nil, err
	}
	res, err := Optimize(c, opts)
	if err != nil {
		return nil, nil, err
	}
	return c, res, nil
}

// ctxErr reports the run's cancellation state.
func (w *weakener) ctxErr() error {
	if w.opts.Context == nil {
		return nil
	}
	if err := w.opts.Context.Err(); err != nil {
		return fmt.Errorf("weaken: canceled: %w", err)
	}
	return nil
}

// collectSites walks the functions reachable from the verification
// entries in deterministic order and records every instruction with a
// non-empty weakening ladder. Functions the harness cannot reach are
// skipped: the checker re-verifies only the code it executes, so a
// weakening there would never be contradicted — it would be an
// unverified rewrite wearing a verified one's provenance.
func (w *weakener) collectSites() {
	in := reachableFuncs(w.m, w.opts.Entries)
	for fi, f := range w.m.Funcs {
		if !in[f] {
			w.res.FuncsSkipped++
			continue
		}
		w.res.FuncsInScope++
		for bi, b := range f.Blocks {
			for _, instr := range b.Instrs {
				if len(ladder(instr.Op, instr.Ord)) > 0 {
					w.sites = append(w.sites, site{fi: fi, bi: bi, in: instr})
				}
			}
		}
	}
}

// scopeCost sums the static cost over the optimization scope.
func (w *weakener) scopeCost() int64 {
	in := reachableFuncs(w.m, w.opts.Entries)
	var total int64
	for _, f := range w.m.Funcs {
		if !in[f] {
			continue
		}
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				total += w.cost.InstrCost(instr)
			}
		}
	}
	return total
}

// reachableFuncs walks the call graph from the entry functions:
// direct calls by name plus any function whose reference appears as an
// operand (spawn targets, stored function pointers — conservative in
// the inclusive direction, which is the safe one here).
func reachableFuncs(m *ir.Module, entries []string) map[*ir.Func]bool {
	in := make(map[*ir.Func]bool, len(entries))
	var stack []*ir.Func
	push := func(f *ir.Func) {
		if f != nil && !in[f] {
			in[f] = true
			stack = append(stack, f)
		}
	}
	for _, e := range entries {
		push(m.Func(e))
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				if instr.Op == ir.OpCall {
					push(m.Func(instr.Callee))
				}
				for _, a := range instr.Args {
					if fr, ok := a.(*ir.FuncRef); ok {
						push(fr.Fn)
					}
				}
			}
		}
	}
	return in
}

// ladder returns the orderings to try next, weakest-preferred order
// per rung, for an instruction of the given op at the given ordering.
// An empty ladder means the site is fully weakened (or not weakenable).
// ir.NotAtomic stands for deletion on fences.
func ladder(op ir.Op, ord ir.MemOrder) []ir.MemOrder {
	switch op {
	case ir.OpLoad:
		switch ord {
		case ir.SeqCst:
			return []ir.MemOrder{ir.Acquire}
		case ir.Acquire:
			return []ir.MemOrder{ir.Relaxed}
		}
	case ir.OpStore:
		switch ord {
		case ir.SeqCst:
			return []ir.MemOrder{ir.Release}
		case ir.Release:
			return []ir.MemOrder{ir.Relaxed}
		}
	case ir.OpCmpXchg, ir.OpRMW:
		switch ord {
		case ir.SeqCst:
			return []ir.MemOrder{ir.AcqRel}
		case ir.AcqRel:
			return []ir.MemOrder{ir.Acquire, ir.Release}
		case ir.Acquire, ir.Release:
			return []ir.MemOrder{ir.Relaxed}
		}
	case ir.OpFence:
		switch ord {
		case ir.SeqCst:
			return []ir.MemOrder{ir.AcqRel}
		case ir.AcqRel:
			return []ir.MemOrder{ir.Acquire, ir.Release}
		case ir.Acquire, ir.Release:
			return []ir.MemOrder{ir.NotAtomic} // deletion
		}
	}
	return nil
}

// round proposes one ladder step per active site, screens all
// candidates in parallel against clones of the current module, then
// merges the survivors sequentially in site order with cumulative
// re-verification. It reports whether any site changed. A site whose
// round candidates all fail is frozen: its ordering is final.
func (w *weakener) round(workers int) (bool, error) {
	var cands []candidate
	for si := range w.sites {
		s := &w.sites[si]
		if s.frozen || s.deleted {
			continue
		}
		for _, ord := range ladder(s.in.Op, s.in.Ord) {
			cands = append(cands, candidate{
				siteIdx: si,
				ord:     ord,
				del:     s.in.Op == ir.OpFence && ord == ir.NotAtomic,
			})
		}
	}
	if len(cands) == 0 {
		return false, nil
	}

	pass, err := w.screen(cands, workers)
	if err != nil {
		return false, err
	}

	// Merge: commit survivors in site order, one at a time, keeping a
	// step only if the cumulative module still re-verifies. The first
	// alternative that commits wins its site's rung and its remaining
	// alternatives are skipped; an alternative that failed screening or
	// the cumulative check only disqualifies itself, never the site —
	// a rung like acq_rel → [acquire, release] must try release even
	// when acquire fails. Only a site none of whose alternatives
	// committed is frozen, in the sweep after the loop.
	ms := w.opts.Obs.Track("weaken").Begin("weaken.merge").Arg("candidates", len(cands))
	defer ms.End()
	changed := false
	committed := make(map[int]bool) // siteIdx -> committed this round
	attempted := make(map[int]bool) // siteIdx -> had a candidate considered
	for ci, c := range cands {
		if committed[c.siteIdx] {
			continue
		}
		attempted[c.siteIdx] = true
		if !pass[ci] {
			continue
		}
		if err := w.ctxErr(); err != nil {
			return changed, err
		}
		ok, err := w.commit(c)
		if err != nil {
			return changed, err
		}
		if ok {
			committed[c.siteIdx] = true
			changed = true
		}
	}
	for si := range w.sites {
		if attempted[si] && !committed[si] {
			w.sites[si].frozen = true
			w.c.frozen.Inc()
		}
		// A fully weakened site has an empty ladder and stops
		// generating candidates on its own.
	}
	return changed, nil
}

// screenOutcome is one candidate's screening verdict plus the checker
// work it cost, carried back to the sequential aggregation step.
type screenOutcome struct {
	ran      bool // the candidate was actually verified (vs. skipped on cancel)
	pass     bool
	stressed bool // the stress oracle screened it (accounting bucket)
	execs    int
	elapsed  time.Duration
}

// screen checks every candidate of a round independently against a
// private clone of the current module, fanning out over the worker
// pool. Workers write only their own slot of the outcome slice; the
// shared Result tallies (Tried/Accepted/Rejected, MCChecks/...) are
// applied sequentially after the pool drains, in candidate order, so
// both the verdicts and the published counts are deterministic
// regardless of worker count or completion order.
func (w *weakener) screen(cands []candidate, workers int) ([]bool, error) {
	outs := make([]screenOutcome, len(cands))
	errs := make([]error, len(cands))
	var cursor int
	var mu sync.Mutex
	next := func() int {
		mu.Lock()
		defer mu.Unlock()
		if w.opts.Context != nil && w.opts.Context.Err() != nil {
			return -1
		}
		i := cursor
		cursor++
		if i >= len(cands) {
			return -1
		}
		return i
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			trk := w.opts.Obs.Track(fmt.Sprintf("weaken.worker-%02d", wi))
			for {
				i := next()
				if i < 0 {
					return
				}
				c := cands[i]
				s := &w.sites[c.siteIdx]
				cs := trk.Begin("weaken.candidate").
					Arg("site", race.SiteString(s.in)).Arg("to", ordName(c))
				outs[i], errs[i] = w.screenOne(c)
				cs.Arg("pass", outs[i].pass).End()
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := w.ctxErr(); err != nil {
		return nil, err
	}
	pass := make([]bool, len(cands))
	for i, o := range outs {
		pass[i] = o.pass
		if o.ran {
			if o.stressed {
				w.noteStress(o.execs, o.elapsed)
			} else {
				w.note(o.execs, o.elapsed)
			}
			w.tally(o.pass)
		}
	}
	return pass, nil
}

// screenOne clones the current module, applies one candidate to the
// clone, and re-verifies it. It is side-effect free on the weakener —
// it runs concurrently with other screenings, reading the live module
// and baseline only — and returns the verdict plus the checker work
// for the caller to account sequentially.
func (w *weakener) screenOne(c candidate) (screenOutcome, error) {
	s := &w.sites[c.siteIdx]
	// Resolve the site's position in the live module by identity, then
	// map it positionally into the clone (clones mirror block layout).
	pos := s.pos(w.m)
	if pos < 0 {
		return screenOutcome{}, fmt.Errorf("weaken: site %s vanished from its block", race.SiteString(s.in))
	}
	clone, err := ir.CloneModule(w.m)
	if err != nil {
		return screenOutcome{}, err
	}
	blk := clone.Funcs[s.fi].Blocks[s.bi]
	if c.del {
		deleteInstr(blk, pos)
	} else {
		blk.Instrs[pos].Ord = c.ord
	}
	res, el, stressed, err := w.verify(clone, roleScreen)
	if err != nil {
		return screenOutcome{}, err
	}
	return screenOutcome{
		ran: true, pass: w.acceptFor(res, stressed), stressed: stressed,
		execs: res.Executions, elapsed: el,
	}, nil
}

// commit applies one screened candidate to the live module and
// re-verifies cumulatively, reverting on rejection or on a hard
// checker error (the module stays in the last verified state either
// way). Coordinates stay
// valid across commits because ordering changes do not move
// instructions and deletions re-resolve positions by identity.
func (w *weakener) commit(c candidate) (bool, error) {
	s := &w.sites[c.siteIdx]
	blk := w.m.Funcs[s.fi].Blocks[s.bi]
	prev := s.in.Ord
	siteStr := race.SiteString(s.in) // before a deletion detaches it
	var pos int
	if c.del {
		pos = s.pos(w.m)
		if pos < 0 {
			return false, fmt.Errorf("weaken: site %s vanished from its block", siteStr)
		}
		deleteInstr(blk, pos)
	} else {
		s.in.Ord = c.ord
	}
	revert := func() {
		if c.del {
			insertInstr(blk, pos, s.in)
		} else {
			s.in.Ord = prev
		}
	}
	res, el, stressed, err := w.verify(w.m, roleMerge)
	if err != nil {
		// Options.Context promises the module is left in the last
		// verified state — a hard checker error must not strand the
		// unverified mutation in the live module.
		revert()
		return false, err
	}
	if stressed {
		w.noteStress(res.Executions, el)
	} else {
		w.note(res.Executions, el)
	}
	ok := w.acceptFor(res, stressed)
	w.tally(ok)
	if !ok {
		revert()
		return false, nil
	}
	d := Decision{
		Fn:    blk.Fn.Name,
		Site:  siteStr,
		Kind:  kindName(s.in.Op),
		From:  prev.String(),
		To:    c.ord.String(),
		Round: w.res.Rounds,
	}
	if s.in.IsMemAccess() {
		if loc := alias.LocOf(s.in.Addr()); loc.Shared() {
			d.Loc = loc.String()
		}
	}
	if c.del {
		d.To = "deleted"
		d.Deleted = true
		d.CostDelta = w.cost.fenceCost(prev)
		s.deleted = true
		w.res.FencesDeleted++
		w.c.fencesDeleted.Inc()
	} else {
		before := *s.in
		before.Ord = prev
		d.CostDelta = w.cost.InstrCost(&before) - w.cost.InstrCost(s.in)
		s.in.SetMark(ir.MarkWeakened)
	}
	w.res.Decisions = append(w.res.Decisions, d)
	w.res.CostAfter -= d.CostDelta
	w.c.costReduced.Add(d.CostDelta)
	return true, nil
}

// accepted applies the acceptance rule to one candidate verification:
// same verdict as the baseline, no new race report keys, and unknown
// never accepts. It only reads state fixed at baseline time, so
// screening workers may call it concurrently; the bookkeeping lives in
// tally.
func (w *weakener) accepted(res *mc.Result) bool {
	ok := res.Verdict == w.base.Verdict && res.Verdict != mc.VerdictUnknown
	if ok {
		for _, r := range res.Races {
			if !w.baseRace[r.Key()] {
				ok = false
				break
			}
		}
	}
	return ok
}

// tally counts one candidate verification's outcome. Sequential only:
// it writes plain Result fields, so screening aggregates after the
// pool drains rather than calling it from workers.
func (w *weakener) tally(ok bool) {
	w.res.Tried++
	w.c.tried.Inc()
	if ok {
		w.res.Accepted++
		w.c.accepted.Inc()
	} else {
		w.res.Rejected++
		w.c.rejected.Inc()
	}
}

// check runs one bounded re-verification and returns its wall clock
// alongside the result. The sequential engine keeps each check
// deterministic; parallelism lives at the candidate level. It mutates
// nothing on the weakener beyond the (atomic) latency histogram —
// callers account the work via note, sequentially.
func (w *weakener) check(m *ir.Module) (*mc.Result, time.Duration, error) {
	t0 := time.Now()
	res, err := mc.Check(m, mc.Options{
		Model:           w.opts.Model,
		Entries:         w.opts.Entries,
		MaxExecutions:   w.opts.MaxExecs,
		MaxStepsPerExec: w.opts.MaxStepsPerExec,
		TimeBudget:      w.opts.TimeBudget,
		Context:         w.opts.Context,
		DetectRaces:     w.opts.DetectRaces,
	})
	if err != nil {
		return nil, 0, err
	}
	el := time.Since(t0)
	w.c.verifyMicros.Observe(el.Microseconds())
	return res, el, nil
}

// note accounts one completed check's work into the report. Sequential
// only, for the same reason as tally.
func (w *weakener) note(execs int, el time.Duration) {
	w.res.MCChecks++
	w.res.MCExecutions += execs
	w.res.MCTime += el
}

// deleteInstr removes the instruction at pos from the block.
func deleteInstr(b *ir.Block, pos int) {
	b.Instrs = append(b.Instrs[:pos], b.Instrs[pos+1:]...)
}

// insertInstr splices in back at pos (deletion revert).
func insertInstr(b *ir.Block, pos int, in *ir.Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = in
}

// indexOf locates in within its block.
func indexOf(b *ir.Block, in *ir.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

func kindName(op ir.Op) string {
	switch op {
	case ir.OpLoad:
		return "load"
	case ir.OpStore:
		return "store"
	case ir.OpRMW:
		return "rmw"
	case ir.OpCmpXchg:
		return "cmpxchg"
	case ir.OpFence:
		return "fence"
	}
	return op.String()
}

func ordName(c candidate) string {
	if c.del {
		return "deleted"
	}
	return c.ord.String()
}

func verdictName(res *mc.Result, err error) string {
	if err != nil || res == nil {
		return "error"
	}
	return res.Verdict.String()
}
