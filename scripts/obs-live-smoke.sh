#!/bin/sh
# End-to-end smoke of the live telemetry surface
# (docs/OBSERVABILITY.md "Live HTTP exposition"): start `atomig -serve
# -http`, port a generated module, scrape /metrics while the daemon is
# mid-flight, and require (a) the scrape to validate as Prometheus
# text AND cross-check against the end-of-run -metrics snapshot
# (`atomig-bench -check-prom -against`), (b) /healthz to walk ok →
# degraded when the admission queue sheds, and (c) a clean drain with
# exit 0.
#
# Usage: obs-live-smoke.sh <atomig> <atomig-bench> <workdir> [sloc]
set -eu

ATOMIG=$1
BENCH=$2
DIR=$3
SLOC=${4:-4000}

fetch() { curl -fsS --max-time 10 "$1"; }

"$BENCH" -gen-module "$DIR/live-smoke.c" -sloc "$SLOC" >/dev/null

rm -f "$DIR/live-req" "$DIR/live-resp" "$DIR/live-stderr" \
	"$DIR/live-metrics.json" "$DIR/live-scrape.txt"
mkfifo "$DIR/live-req"
# Queue depth 1 so a later burst of concurrent ports is shed —
# exactly the overload path /healthz must surface as degraded.
"$ATOMIG" -serve -j 1 -queue 1 -http 127.0.0.1:0 \
	-metrics "$DIR/live-metrics.json" -log "$DIR/live-log.jsonl" \
	-crash "$DIR/live-crash.json" \
	<"$DIR/live-req" >"$DIR/live-resp" 2>"$DIR/live-stderr" &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT
exec 3>"$DIR/live-req"

send() { printf '%s\n' "$1" >&3; }

# wait_resp <id>: block until the response for <id> arrives.
wait_resp() {
	i=0
	while ! grep -q "\"id\":\"$1\"" "$DIR/live-resp" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -gt 600 ]; then
			echo "obs-live-smoke: timeout waiting for response $1" >&2
			exit 1
		fi
		sleep 0.1
	done
}

wait_ok() {
	wait_resp "$1"
	if ! grep "\"id\":\"$1\"" "$DIR/live-resp" | grep -q '"ok":true'; then
		echo "obs-live-smoke: request $1 failed:" >&2
		grep "\"id\":\"$1\"" "$DIR/live-resp" >&2
		exit 1
	fi
}

# The daemon prints the bound ephemeral address on stderr.
ADDR=""
i=0
while [ -z "$ADDR" ]; do
	ADDR=$(sed -n 's/^http: listening on //p' "$DIR/live-stderr" 2>/dev/null | head -1)
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "obs-live-smoke: daemon never bound its -http address" >&2
		exit 1
	fi
	[ -z "$ADDR" ] && sleep 0.1
done

# Idle daemon: healthy.
fetch "http://$ADDR/healthz" | grep -q '"status":"ok"' || {
	echo "obs-live-smoke: idle /healthz not ok" >&2
	exit 1
}

# Load, then scrape while the port is in flight. The scrape is taken
# between sending the port request and seeing its response, so the
# counters it captures are a genuine mid-run observation; check-prom
# -against proves them consistent with the final snapshot.
send "{\"id\":\"load\",\"op\":\"load\",\"name\":\"$DIR/live-smoke.c\",\"path\":\"$DIR/live-smoke.c\"}"
wait_ok load
send '{"id":"port","op":"port"}'
fetch "http://$ADDR/metrics" >"$DIR/live-scrape.txt"
wait_ok port

# Overload: burst more ports than the single admission slot holds.
# At least one is shed, flipping /healthz to degraded (queue full or
# recent trouble — both count). Retry the burst briefly: on a fast
# machine the first port may finish before the second line is read.
degraded=""
for round in 1 2 3 4 5; do
	for n in 1 2 3 4; do
		send "{\"id\":\"burst$round-$n\",\"op\":\"port\"}"
	done
	h=$(fetch "http://$ADDR/healthz")
	case "$h" in *degraded*) degraded=yes ;; esac
	for n in 1 2 3 4; do
		wait_resp "burst$round-$n"
	done
	[ -n "$degraded" ] && break
done
if [ -z "$degraded" ]; then
	echo "obs-live-smoke: /healthz never reported degraded under overload" >&2
	exit 1
fi
if ! grep -q '"overloaded"' "$DIR/live-resp"; then
	echo "obs-live-smoke: burst was never shed with a typed overloaded response" >&2
	exit 1
fi

# Clean drain: shutdown answers after quiescence, the process exits 0,
# and the end-of-run snapshot lands on disk.
send '{"id":"bye","op":"shutdown"}'
wait_ok bye
exec 3>&-
wait $SRV
trap - EXIT

# The mid-flight scrape must be valid Prometheus text AND consistent
# with the final snapshot: every shared counter ≤ its final value.
"$BENCH" -check-metrics "$DIR/live-metrics.json"
"$BENCH" -check-prom "$DIR/live-scrape.txt" -against "$DIR/live-metrics.json"

# The structured log is one valid JSON object per line with the
# request lifecycle events.
grep -q '"ev":"serve.request_admitted"' "$DIR/live-log.jsonl" || {
	echo "obs-live-smoke: -log carries no admission events" >&2
	exit 1
}
grep -q '"ev":"serve.request_shed"' "$DIR/live-log.jsonl" || {
	echo "obs-live-smoke: -log carries no shed events despite overload" >&2
	exit 1
}

echo "obs-live-smoke: ok (mid-flight scrape consistent with final snapshot, healthz ok->degraded, clean drain)"
