#!/bin/sh
# End-to-end smoke of the incremental porting daemon (docs/SERVE.md):
# start `atomig -serve`, load a generated module via path, port to a
# file, edit one function through the protocol, re-port, and require
# (a) both ports byte-identical to what the CLI produces for the same
# module, (b) the re-port re-analyzed exactly the one edited function,
# and (c) a clean shutdown with exit 0.
#
# The protocol executes requests on one connection concurrently, so
# the driver waits for each response before sending an order-dependent
# follow-up — exactly what a real client must do (docs/SERVE.md).
#
# Usage: serve-smoke.sh <atomig> <atomig-bench> <workdir> [sloc]
set -eu

ATOMIG=$1
BENCH=$2
DIR=$3
SLOC=${4:-8000}

"$BENCH" -gen-module "$DIR/serve-smoke.c" -sloc "$SLOC" >/dev/null

rm -f "$DIR/req" "$DIR/resp"
mkfifo "$DIR/req"
# -log on: structured logging must not perturb the byte-identity
# contract the warm re-port is compared under.
"$ATOMIG" -serve -j 1 -log "$DIR/serve-log.jsonl" <"$DIR/req" >"$DIR/resp" &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT
exec 3>"$DIR/req"

send() { printf '%s\n' "$1" >&3; }

# wait_ok <id>: block until the response for <id> arrives; require ok.
wait_ok() {
	i=0
	while ! grep -q "\"id\":\"$1\"" "$DIR/resp" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -gt 600 ]; then
			echo "serve-smoke: timeout waiting for response $1" >&2
			exit 1
		fi
		sleep 0.1
	done
	if ! grep "\"id\":\"$1\"" "$DIR/resp" | grep -q '"ok":true'; then
		echo "serve-smoke: request $1 failed:" >&2
		grep "\"id\":\"$1\"" "$DIR/resp" >&2
		exit 1
	fi
}

# Cold: load via path, port to a file, byte-compare with the CLI.
"$ATOMIG" -j 1 -o "$DIR/serve-ref-cold.air" "$DIR/serve-smoke.c"
# The module name must match the CLI's (it names modules by file
# path, and the name is the first line of the rendered output).
send "{\"id\":\"load\",\"op\":\"load\",\"name\":\"$DIR/serve-smoke.c\",\"path\":\"$DIR/serve-smoke.c\"}"
wait_ok load
send "{\"id\":\"cold\",\"op\":\"port\",\"out\":\"$DIR/serve-cold.air\"}"
wait_ok cold
cmp "$DIR/serve-ref-cold.air" "$DIR/serve-cold.air"

# Edit one function: give @lg_compute0 the donor body of @lg_compute1
# (generated filler functions share a signature and are never called).
send "{\"id\":\"dump0\",\"op\":\"dump\",\"out\":\"$DIR/serve-dump0.air\"}"
wait_ok dump0
DELTA=$(sed -n '/@lg_compute1(/,/^}/p' "$DIR/serve-dump0.air" |
	sed 's/@lg_compute1(/@lg_compute0(/' | awk '{printf "%s\\n", $0}')
send "{\"id\":\"edit\",\"op\":\"edit\",\"replace\":[\"$DELTA\"]}"
wait_ok edit

# Warm re-port: exactly one cache miss (the edited function), and the
# output byte-identical to the CLI porting the dumped edited module.
send "{\"id\":\"warm\",\"op\":\"port\",\"out\":\"$DIR/serve-warm.air\"}"
wait_ok warm
if ! grep '"id":"warm"' "$DIR/resp" | grep -q '"CacheMisses":1[,}]'; then
	echo "serve-smoke: warm re-port did not have exactly 1 cache miss:" >&2
	grep '"id":"warm"' "$DIR/resp" >&2
	exit 1
fi
if grep '"id":"warm"' "$DIR/resp" | grep -q '"CacheHits":0[,}]'; then
	echo "serve-smoke: warm re-port had no cache hits:" >&2
	grep '"id":"warm"' "$DIR/resp" >&2
	exit 1
fi
send "{\"id\":\"dump1\",\"op\":\"dump\",\"out\":\"$DIR/serve-dump1.air\"}"
wait_ok dump1
"$ATOMIG" -j 1 -o "$DIR/serve-ref-warm.air" "$DIR/serve-dump1.air"
cmp "$DIR/serve-ref-warm.air" "$DIR/serve-warm.air"

# Clean shutdown: the daemon drains and exits 0.
send '{"id":"bye","op":"shutdown"}'
wait_ok bye
exec 3>&-
wait $SRV
trap - EXIT
echo "serve-smoke: ok (cold and warm ports byte-identical to CLI, warm re-analysis = 1 function)"
