#!/bin/sh
# stress-smoke: end-to-end smoke of the schedule-fuzzing stress mode
# (docs/STRESS.md). A generated module with a seeded seqlock-gap race
# is ported through the atomig CLI, then swept by atomig-mc -stress:
# the planted race must be found, auto-minimized to a litmus-sized
# program, and confirmed exhaustively by the model checker. The same
# module generated WITHOUT the defect is the negative control — its
# sweep must be completely clean. Driven by `make stress-smoke` (wired
# into `make check`).
#
# Usage: stress-smoke.sh <atomig> <atomig-bench> <atomig-mc> <bindir> [sloc]
set -e

ATOMIG="$1"
BENCH="$2"
MC="$3"
BIN="$4"
SLOC="${5:-20000}"
ENTRIES="lg_stress_t0,lg_stress_t1,lg_stress_t2"

if [ -z "$ATOMIG" ] || [ -z "$BENCH" ] || [ -z "$MC" ] || [ -z "$BIN" ]; then
    echo "usage: $0 <atomig> <atomig-bench> <atomig-mc> <bindir> [sloc]" >&2
    exit 2
fi

fail() {
    echo "stress-smoke: $1" >&2
    shift
    for line in "$@"; do echo "$line" >&2; done
    exit 1
}

# Positive control: the planted race must survive a correct port (the
# gap read needs no synchronization, so the port leaves it plain), be
# found by the sweep, minimize, and confirm.
"$BENCH" -gen-stress-module "$BIN/stress-smoke-racy.c" -sloc "$SLOC" -plant-race
"$ATOMIG" -o "$BIN/stress-smoke-racy.air" "$BIN/stress-smoke-racy.c"
set +e
out=$("$MC" -stress -minimize -seeds 32 -j 8 -entries "$ENTRIES" "$BIN/stress-smoke-racy.air")
code=$?
set -e
[ "$code" -eq 4 ] || fail "planted sweep exited $code, want 4 (race found)" "$out"
echo "$out" | grep -q "lg_gap_data" || fail "planted race on lg_gap_data not reported" "$out"
echo "$out" | grep -q "^minimized: " || fail "finding was not minimized" "$out"
echo "$out" | grep -q "^confirmed: verdict=racy" || fail "checker did not confirm the minimized race" "$out"
echo "stress-smoke: planted race found, minimized and confirmed:"
echo "$out" | grep -E "^(minimized|confirmed): "

# Negative control: the identical module without the defect sweeps
# clean (reduced seeds — a clean verdict needs no minimization pass).
"$BENCH" -gen-stress-module "$BIN/stress-smoke-clean.c" -sloc "$SLOC"
"$ATOMIG" -o "$BIN/stress-smoke-clean.air" "$BIN/stress-smoke-clean.c"
out=$("$MC" -stress -seeds 8 -j 8 -entries "$ENTRIES" "$BIN/stress-smoke-clean.air") || \
    fail "negative control reported findings (exit $?)" "$out"
echo "$out" | grep -q "races: none" || fail "negative control output missing clean verdict" "$out"
echo "stress-smoke: negative control clean"
