#!/bin/sh
# weaken-smoke: port + -O the weakening flagships through the atomig
# CLI and assert the optimizer's contract end to end — the baseline
# verdict holds (the report says so only after re-verifying every
# committed weakening cumulatively) and the static cost strictly
# decreases. Driven by `make weaken-smoke` (wired into `make check`).
#
# Usage: weaken-smoke.sh <atomig-binary>
set -e

ATOMIG="$1"
if [ -z "$ATOMIG" ]; then
    echo "usage: $0 <atomig-binary>" >&2
    exit 2
fi

for prog in seqlock-gap cna-lock; do
    out=$("$ATOMIG" -O -corpus "$prog") || {
        echo "weaken-smoke: $prog: atomig -O failed" >&2
        exit 1
    }
    echo "$out" | grep -q "baseline verified" || {
        echo "weaken-smoke: $prog: baseline not verified:" >&2
        echo "$out" >&2
        exit 1
    }
    line=$(echo "$out" | grep "static cost")
    before=$(echo "$line" | sed -E 's/.*: *([0-9]+) -> ([0-9]+) cycles.*/\1/')
    after=$(echo "$line" | sed -E 's/.*: *([0-9]+) -> ([0-9]+) cycles.*/\2/')
    case "$before$after" in
        *[!0-9]*|'')
            echo "weaken-smoke: $prog: could not parse cost line: $line" >&2
            exit 1 ;;
    esac
    if [ "$after" -ge "$before" ]; then
        echo "weaken-smoke: $prog: cost did not strictly decrease ($before -> $after)" >&2
        exit 1
    fi
    echo "weaken-smoke: $prog: verified, cost $before -> $after cycles"
done
